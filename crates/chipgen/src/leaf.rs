//! Leaf-module construction following the paper's Figure-1 abstraction.
//!
//! Every leaf has parity-protected input groups `I<g>` (odd parity over
//! the whole group), injectable state entities (FSMs, counters, datapath
//! registers — all carrying their own odd-parity bit), combinational
//! state checkers (Check1), registered input checkers (Check2), a
//! hardware-error report output `HE`, and parity-preserving output groups
//! `O<j>`.
//!
//! Checkpoints are annotated with `checkpoint.*` attributes; the
//! methodology layer (`veridic-core`) consumes these to produce the
//! Verifiable-RTL transform and the three stereotype vunits.

use crate::bugs::BugId;
use crate::plan::{LeafPlan, SpecialKind};
use veridic_netlist::{Expr, ExprId, Module, NetId, PortDir, Value};

/// Kinds of injectable state entity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntityKind {
    /// Free-running FSM (steps on its command bit).
    Fsm,
    /// Always-incrementing counter.
    Counter,
    /// Parity-propagating datapath register.
    Datapath,
    /// Legal-state FSM confined to data values 0..=4 (carries a P3
    /// property).
    LegalFsm,
    /// CSR register with a reserved field (bug B1 host).
    Csr,
    /// The decoder output register (bugs B5/B6 host).
    DecoderOut,
}

impl EntityKind {
    fn as_str(self) -> &'static str {
        match self {
            EntityKind::Fsm => "fsm",
            EntityKind::Counter => "counter",
            EntityKind::Datapath => "datapath",
            EntityKind::LegalFsm => "legal_fsm",
            EntityKind::Csr => "csr",
            EntityKind::DecoderOut => "decoder_out",
        }
    }
}

/// The 91 valid decode addresses of the address-decoder module
/// (deterministic spread over the 8-bit space, excluding the protocol
/// command bytes).
pub fn valid_addresses() -> Vec<u8> {
    // 91 values: multiples of 2.8 ≈ stride walk, skipping the START byte.
    let mut out = Vec::with_capacity(91);
    let mut x: u32 = 7;
    while out.len() < 91 {
        x = (x * 53 + 11) % 256;
        let b = x as u8;
        if b != START_CMD && !out.contains(&b) {
            out.push(b);
        }
    }
    out.sort_unstable();
    out
}

/// The decoder protocol's start-transaction command byte.
pub const START_CMD: u8 = 0xA5;

/// Index into [`valid_addresses`] of the first parity-bugged decode case
/// (bug B5).
pub const B5_CASE: usize = 17;
/// Index of the second bugged case (B6).
pub const B6_CASE: usize = 53;

/// Builds a leaf module per the plan, optionally with a seeded bug.
///
/// # Panics
///
/// Panics if a bug id is passed for a plan whose `special` kind cannot
/// host it (caller pairs bugs with modules via `crate::bugs`).
pub fn build_leaf(plan: &LeafPlan, bug: Option<BugId>) -> Module {
    let mut b = LeafBuilder::new(plan, bug);
    b.ports();
    b.entities();
    b.checkers();
    b.outputs();
    b.payload();
    b.m.attrs.insert("chip.category".into(), plan.category.to_string());
    b.m.attrs.insert("chip.special".into(), format!("{:?}", plan.special));
    b.m.attrs.insert("he.width".into(), plan.he_bits.to_string());
    b.m.validate().unwrap_or_else(|e| panic!("generated module {} invalid: {e}", plan.name));
    b.m
}

/// Width of generic parity-protected groups and entities (3 data bits +
/// 1 parity bit).
pub const GROUP_WIDTH: u32 = 4;
/// Width of the decoder data group and output (7 data + parity).
pub const DECODER_WIDTH: u32 = 8;

struct LeafBuilder<'a> {
    plan: &'a LeafPlan,
    bug: Option<BugId>,
    m: Module,
    in_nets: Vec<NetId>,
    cmd: Option<NetId>,
    addr: Option<NetId>,
    macro_valid: Option<NetId>,
    warm_done: Option<NetId>,
    entities: Vec<(NetId, EntityKind)>,
    in_groups: usize,
    n_entities: usize,
}

impl<'a> LeafBuilder<'a> {
    fn new(plan: &'a LeafPlan, bug: Option<BugId>) -> Self {
        // The decoder's group 0 is its wide data bus; datapath entities
        // need at least one generic 4-bit group, so shift one entity over
        // if the plan gave the decoder a single group.
        let (mut entities, mut in_groups) = (plan.entities, plan.in_groups);
        if plan.special == SpecialKind::AddressDecoder && in_groups < 2 {
            assert!(entities >= 2, "decoder plan too small");
            entities -= 1;
            in_groups += 1;
        }
        LeafBuilder {
            plan,
            bug,
            m: Module::new(plan.name.clone()),
            in_nets: Vec::new(),
            cmd: None,
            addr: None,
            macro_valid: None,
            warm_done: None,
            entities: Vec::new(),
            in_groups,
            n_entities: entities,
        }
    }

    fn ports(&mut self) {
        for g in 0..self.in_groups {
            let (name, width) = self.group_shape(g);
            let net = self.m.add_port(name, PortDir::Input, width);
            let he_bit = self.checker_he_bit(self.n_entities + g);
            let attrs = &mut self.m.net_mut(net).attrs;
            attrs.insert("checkpoint.kind".into(), "input_group".into());
            attrs.insert("checkpoint.index".into(), g.to_string());
            attrs.insert("checkpoint.he_bit".into(), he_bit.to_string());
            if self.plan.special == SpecialKind::MacroInterface && g == 0 {
                attrs.insert("checkpoint.guard".into(), "warm_done".into());
            }
            self.in_nets.push(net);
        }
        let cmd = self.m.add_port("CMD", PortDir::Input, self.n_entities.max(1) as u32);
        self.m.net_mut(cmd).attrs.insert("checkpoint.kind".into(), "control".into());
        self.cmd = Some(cmd);
        if self.plan.special == SpecialKind::AddressDecoder {
            let addr = self.m.add_port("ADDR", PortDir::Input, 8);
            self.m.net_mut(addr).attrs.insert("checkpoint.kind".into(), "control".into());
            self.addr = Some(addr);
        }
        if self.plan.special == SpecialKind::MacroInterface {
            let mv = self.m.add_port("MACRO_VALID", PortDir::Input, 1);
            self.m.net_mut(mv).attrs.insert("checkpoint.kind".into(), "control".into());
            self.macro_valid = Some(mv);
            // Warm-up chain: warm_done rises at cycle 2 and stays high.
            let c0 = self.m.add_net("warm_c0", 1);
            let one = self.m.lit(1, 1);
            self.m.add_reg(c0, one, Value::zero(1));
            let c1 = self.m.add_net("warm_done", 1);
            let sc0 = self.m.sig(c0);
            self.m.add_reg(c1, sc0, Value::zero(1));
            self.warm_done = Some(c1);
        }
    }

    fn group_shape(&self, g: usize) -> (String, u32) {
        match (self.plan.special, g) {
            (SpecialKind::MacroInterface, 0) => ("MACRO_SIG".to_string(), GROUP_WIDTH),
            (SpecialKind::AddressDecoder, 0) => ("DATA".to_string(), DECODER_WIDTH),
            _ => (format!("I{g}"), GROUP_WIDTH),
        }
    }

    /// Round-robin mapping of checker index to HE bit. Checker indices:
    /// entities first, then input groups.
    fn checker_he_bit(&self, checker: usize) -> usize {
        checker % self.plan.he_bits
    }

    fn entity_kind(&self, e: usize) -> EntityKind {
        match (self.plan.special, e) {
            (SpecialKind::CsrFile, 0) => EntityKind::Csr,
            (SpecialKind::AddressDecoder, 0) => EntityKind::DecoderOut,
            _ => {
                // Special modules reserve entity 0; the P3 legal-state
                // FSMs occupy the first plan.p3 *generic* entity slots.
                let reserved = usize::from(matches!(
                    self.plan.special,
                    SpecialKind::CsrFile | SpecialKind::AddressDecoder
                ));
                if e >= reserved && e - reserved < self.plan.p3 {
                    EntityKind::LegalFsm
                } else {
                    match e % 3 {
                        0 => EntityKind::Fsm,
                        1 => EntityKind::Counter,
                        _ => EntityKind::Datapath,
                    }
                }
            }
        }
    }

    fn entities(&mut self) {
        for e in 0..self.n_entities {
            let kind = self.entity_kind(e);
            let width = if kind == EntityKind::DecoderOut { DECODER_WIDTH } else { GROUP_WIDTH };
            let q = self.m.add_net(format!("ent{e}_{}", kind.as_str()), width);
            let next = self.entity_next(e, kind, q, width);
            // Reset: zero data with correct odd parity => parity bit set.
            let mut reset = Value::zero(width);
            reset.set_bit(width - 1, true);
            self.m.add_reg(q, next, reset);
            let he_bit = self.checker_he_bit(e);
            let attrs = &mut self.m.net_mut(q).attrs;
            attrs.insert("checkpoint.kind".into(), "entity".into());
            attrs.insert("checkpoint.entity_kind".into(), kind.as_str().into());
            attrs.insert("checkpoint.index".into(), e.to_string());
            attrs.insert("checkpoint.he_bit".into(), he_bit.to_string());
            if kind == EntityKind::LegalFsm {
                attrs.insert("checkpoint.legal_max".into(), "4".into());
            }
            self.entities.push((q, kind));
        }
    }

    /// {parity, data} with parity = ~^data (odd total parity).
    fn with_parity(&mut self, data: ExprId) -> ExprId {
        let p = self.m.arena.add(Expr::RedXor(data));
        let np = self.m.arena.add(Expr::Not(p));
        self.m.arena.add(Expr::Concat(vec![np, data]))
    }

    fn cmd_bit(&mut self, e: usize) -> ExprId {
        let cmd = self.cmd.expect("CMD port exists");
        self.m.sig_bit(cmd, e as u32)
    }

    fn entity_next(&mut self, e: usize, kind: EntityKind, q: NetId, width: u32) -> ExprId {
        let sq = self.m.sig(q);
        let data = self.m.arena.add(Expr::Slice(sq, width - 2, 0));
        match kind {
            EntityKind::Fsm => {
                let one = self.m.lit(width - 1, 1);
                let inc = self.m.arena.add(Expr::Add(data, one));
                let stepped = if self.bug == Some(BugId::B0) && e == 0 {
                    // B0: parity bit NOT recomputed on the (common) step
                    // transition — the stale bit goes stale whenever the
                    // increment flips data parity.
                    let old_p = self.m.arena.add(Expr::Slice(sq, width - 1, width - 1));
                    self.m.arena.add(Expr::Concat(vec![old_p, inc]))
                } else {
                    self.with_parity(inc)
                };
                let c = self.cmd_bit(e);
                self.m.arena.add(Expr::Mux { cond: c, then_: stepped, else_: sq })
            }
            EntityKind::LegalFsm => {
                // data' = (data == 4) ? 0 : data + 1 when stepped.
                let one = self.m.lit(width - 1, 1);
                let inc = self.m.arena.add(Expr::Add(data, one));
                let four = self.m.lit(width - 1, 4);
                let at4 = self.m.arena.add(Expr::Eq(data, four));
                let zero = self.m.lit(width - 1, 0);
                let wrapped = self.m.arena.add(Expr::Mux { cond: at4, then_: zero, else_: inc });
                let stepped = if self.bug == Some(BugId::B0) && e == 0 {
                    // B0 can land on a legal-state FSM when it is the
                    // module's first entity: same stale-parity defect.
                    let old_p = self.m.arena.add(Expr::Slice(sq, width - 1, width - 1));
                    self.m.arena.add(Expr::Concat(vec![old_p, wrapped]))
                } else {
                    self.with_parity(wrapped)
                };
                let c = self.cmd_bit(e);
                self.m.arena.add(Expr::Mux { cond: c, then_: stepped, else_: sq })
            }
            EntityKind::Counter => {
                let one = self.m.lit(width - 1, 1);
                let inc = self.m.arena.add(Expr::Add(data, one));
                if self.bug == Some(BugId::B2) && matches!(self.entity_kind(e), EntityKind::Counter) && self.first_counter() == e {
                    // B2: on wrap (data all-ones), the parity bit keeps its
                    // old value instead of being recomputed.
                    let ones = self.m.lit(width - 1, (1u64 << (width - 1)) - 1);
                    let at_wrap = self.m.arena.add(Expr::Eq(data, ones));
                    let old_p = self.m.arena.add(Expr::Slice(sq, width - 1, width - 1));
                    let wrong = self.m.arena.add(Expr::Concat(vec![old_p, inc]));
                    let right = self.with_parity(inc);
                    self.m.arena.add(Expr::Mux { cond: at_wrap, then_: wrong, else_: right })
                } else {
                    self.with_parity(inc)
                }
            }
            EntityKind::Datapath => {
                // dp' = I_g1 ^ I_g2 ^ 4'b0001: odd # of odd-parity terms.
                let g1 = self.generic_group(e);
                let g2 = self.generic_group(e + 1);
                let s1 = self.m.sig(g1);
                let s2 = self.m.sig(g2);
                let x = self.m.arena.add(Expr::Xor(s1, s2));
                let c = self.m.lit(width, 1);
                self.m.arena.add(Expr::Xor(x, c))
            }
            EntityKind::Csr => {
                // State layout: [p, rsv, d1, d0]. Write from I0's low bits.
                let wdata_net = self.in_nets[0];
                let wv = self.m.sig(wdata_net);
                let d10 = self.m.arena.add(Expr::Slice(wv, 1, 0));
                let rsv = self.m.arena.add(Expr::Slice(wv, 2, 2));
                let stored = self.m.arena.add(Expr::Concat(vec![rsv, d10]));
                let parity = if self.bug == Some(BugId::B1) {
                    // B1: parity computed over the documented fields only —
                    // a non-zero reserved-field write corrupts the stored
                    // parity.
                    let p = self.m.arena.add(Expr::RedXor(d10));
                    self.m.arena.add(Expr::Not(p))
                } else {
                    let p = self.m.arena.add(Expr::RedXor(stored));
                    self.m.arena.add(Expr::Not(p))
                };
                let written = self.m.arena.add(Expr::Concat(vec![parity, stored]));
                let c = self.cmd_bit(e);
                self.m.arena.add(Expr::Mux { cond: c, then_: written, else_: sq })
            }
            EntityKind::DecoderOut => self.decoder_next(sq),
        }
    }

    /// First Counter entity index (B2 target).
    fn first_counter(&self) -> usize {
        (0..self.n_entities)
            .find(|e| self.entity_kind(*e) == EntityKind::Counter)
            .unwrap_or(0)
    }

    /// A generic (4-bit) input group for datapath sourcing; skips the
    /// decoder's wide group 0.
    fn generic_group(&mut self, i: usize) -> NetId {
        let start = if self.plan.special == SpecialKind::AddressDecoder { 1 } else { 0 };
        let n = self.in_groups - start;
        self.in_nets[start + i % n]
    }

    fn decoder_next(&mut self, sq: ExprId) -> ExprId {
        // Protocol: a START_CMD byte on ADDR arms `started`; a valid
        // decode address in the next cycle latches the decode result.
        let addr = self.addr.expect("decoder has ADDR");
        let saddr = self.m.sig(addr);
        let start_c = self.m.lit(8, START_CMD as u64);
        let is_start = self.m.arena.add(Expr::Eq(saddr, start_c));
        let started = self.m.add_net("started", 1);
        self.m.add_reg(started, is_start, Value::zero(1));
        let sstarted = self.m.sig(started);

        let valids = valid_addresses();
        let mut valid: Option<ExprId> = None;
        for v in &valids {
            let c = self.m.lit(8, *v as u64);
            let eq = self.m.arena.add(Expr::Eq(saddr, c));
            valid = Some(match valid {
                None => eq,
                Some(acc) => self.m.arena.add(Expr::Or(acc, eq)),
            });
        }
        let valid = valid.expect("91 valid cases");
        let fire = self.m.arena.add(Expr::And(sstarted, valid));

        // Decode result: data' = DATA[6:0] ^ {ADDR[6:0] mix}.
        let data_net = self.in_nets[0];
        let sdata = self.m.sig(data_net);
        let d = self.m.arena.add(Expr::Slice(sdata, 6, 0));
        let amix = self.m.arena.add(Expr::Slice(saddr, 6, 0));
        let mixed = self.m.arena.add(Expr::Xor(d, amix));
        // Parity: recomputed over the full result — except, with bugs B5
        // or B6, for one specific valid address the tree omits one data
        // bit, so the stored parity is wrong exactly when that bit is 1.
        let full_p = self.m.arena.add(Expr::RedXor(mixed));
        let full_np = self.m.arena.add(Expr::Not(full_p));
        // Bug cases: `Some(B5)` seeds BOTH bad decode cases (the chip has
        // two independent decoder bugs, B5 and B6, in the same module);
        // `Some(B6)` seeds only the second, for isolation in unit tests.
        let mut bad_cases: Vec<(usize, u32)> = Vec::new();
        if self.bug == Some(BugId::B5) {
            bad_cases.push((B5_CASE, 4));
            bad_cases.push((B6_CASE, 2));
        } else if self.bug == Some(BugId::B6) {
            bad_cases.push((B6_CASE, 2));
        }
        let mut parity = full_np;
        for (case, omit) in bad_cases {
            let bad_addr = self.m.lit(8, valids[case] as u64);
            let is_bad = self.m.arena.add(Expr::Eq(saddr, bad_addr));
            // Omit one bit from the parity tree: wrong iff that bit is 1.
            let hi = self.m.arena.add(Expr::Slice(mixed, 6, omit + 1));
            let lo = if omit > 0 {
                Some(self.m.arena.add(Expr::Slice(mixed, omit - 1, 0)))
            } else {
                None
            };
            let partial = match lo {
                Some(lo) => self.m.arena.add(Expr::Concat(vec![hi, lo])),
                None => hi,
            };
            let pp = self.m.arena.add(Expr::RedXor(partial));
            let pnp = self.m.arena.add(Expr::Not(pp));
            parity = self.m.arena.add(Expr::Mux { cond: is_bad, then_: pnp, else_: parity });
        }
        let result = self.m.arena.add(Expr::Concat(vec![parity, mixed]));
        self.m.arena.add(Expr::Mux { cond: fire, then_: result, else_: sq })
    }

    fn checkers(&mut self) {
        let he_bits = self.plan.he_bits;
        let mut he_terms: Vec<Vec<ExprId>> = vec![Vec::new(); he_bits];
        // Check1: combinational parity check per entity.
        for (e, (q, _)) in self.entities.clone().into_iter().enumerate() {
            let sq = self.m.sig(q);
            let p = self.m.arena.add(Expr::RedXor(sq));
            let bad = self.m.arena.add(Expr::Not(p));
            he_terms[self.checker_he_bit(e)].push(bad);
        }
        // Check2: registered parity check per input group.
        for (g, net) in self.in_nets.clone().into_iter().enumerate() {
            let s = self.m.sig(net);
            let p = self.m.arena.add(Expr::RedXor(s));
            let bad = self.m.arena.add(Expr::Not(p));
            let gated = if self.plan.special == SpecialKind::MacroInterface && g == 0 {
                // The macro contract: data undefined until warm_done. The
                // clean design gates the checker with the internal warm-up
                // counter; the B3 design trusts the macro's own VALID pin —
                // whose simulation model is (wrongly) always-high.
                let gate = if self.bug == Some(BugId::B3) {
                    let mv = self.macro_valid.expect("macro has MACRO_VALID");
                    self.m.sig(mv)
                } else {
                    let wd = self.warm_done.expect("macro has warm_done");
                    self.m.sig(wd)
                };
                self.m.arena.add(Expr::And(gate, bad))
            } else {
                bad
            };
            let q = self.m.add_net(format!("in_chk{g}_q"), 1);
            self.m.add_reg(q, gated, Value::zero(1));
            let sq = self.m.sig(q);
            he_terms[self.checker_he_bit(self.n_entities + g)].push(sq);
        }
        let he = self.m.add_port("HE", PortDir::Output, he_bits as u32);
        self.m.net_mut(he).attrs.insert("checkpoint.kind".into(), "he".into());
        let mut bits: Vec<ExprId> = Vec::new(); // MSB-first for concat
        for j in (0..he_bits).rev() {
            let terms = he_terms[j].clone();
            let bit = terms
                .into_iter()
                .reduce(|a, b| self.m.arena.add(Expr::Or(a, b)))
                .unwrap_or_else(|| self.m.lit(1, 0));
            bits.push(bit);
        }
        let he_expr = if bits.len() == 1 {
            bits[0]
        } else {
            self.m.arena.add(Expr::Concat(bits))
        };
        self.m.assign(he, he_expr);
    }

    fn outputs(&mut self) {
        // 4-bit-capable sources: generic entities + generic groups.
        let narrow_entities: Vec<NetId> = self
            .entities
            .iter()
            .filter(|(_, k)| *k != EntityKind::DecoderOut)
            .map(|(q, _)| *q)
            .collect();
        let start = if self.plan.special == SpecialKind::AddressDecoder { 1 } else { 0 };
        let narrow_groups: Vec<NetId> = self.in_nets[start..].to_vec();
        let mut sources: Vec<NetId> = narrow_entities;
        sources.extend(narrow_groups);
        assert!(!sources.is_empty(), "module {} has no 4-bit sources", self.plan.name);

        for j in 0..self.plan.out_groups {
            let (name, width) = if self.plan.special == SpecialKind::AddressDecoder && j == 0 {
                (format!("O{j}"), DECODER_WIDTH)
            } else {
                (format!("O{j}"), GROUP_WIDTH)
            };
            let port = self.m.add_port(name, PortDir::Output, width);
            let attrs = &mut self.m.net_mut(port).attrs;
            attrs.insert("checkpoint.kind".into(), "output_group".into());
            attrs.insert("checkpoint.index".into(), j.to_string());

            if self.plan.special == SpecialKind::AddressDecoder && j == 0 {
                // O0 is the decoder result register, passed through.
                let (q, _) = self.entities[0];
                let sq = self.m.sig(q);
                self.m.assign(port, sq);
                continue;
            }
            // XOR of three sources (odd parity count; duplicates cancel in
            // pairs and keep the count odd).
            let s1 = sources[j % sources.len()];
            let s2 = sources[(j * 2 + 1) % sources.len()];
            let s3 = sources[(j * 3 + 2) % sources.len()];
            let e1 = self.m.sig(s1);
            let e2 = self.m.sig(s2);
            let e3 = self.m.sig(s3);
            let x12 = self.m.arena.add(Expr::Xor(e1, e2));
            if self.bug == Some(BugId::B4) && j == 0 {
                // B4: the CMD[0]-selected mux path drops the third source
                // without a parity correction, emitting even parity. The
                // select is a common condition, so simulation trips over
                // it quickly (Table 3 classifies B4 as easy).
                let sel = self.cmd_bit(0);
                let x123 = self.m.arena.add(Expr::Xor(x12, e3));
                let muxed = self.m.arena.add(Expr::Mux { cond: sel, then_: x12, else_: x123 });
                self.m.assign(port, muxed);
            } else {
                let x123 = self.m.arena.add(Expr::Xor(x12, e3));
                self.m.assign(port, x123);
            }
        }
    }
}

impl<'a> LeafBuilder<'a> {
    /// Non-checkpointed bulk logic: a 64-bit XOR/ADD pipeline seeded from
    /// the input groups, sunk to a dedicated `PAYLOAD` output. It models
    /// the module's ordinary datapath mass (the paper's modules are far
    /// larger than their checkpoint logic, which is why the injection
    /// feature costs <2 % area). The payload is combinational and feeds
    /// no property, so cone-of-influence reduction removes it from every
    /// formal check.
    fn payload(&mut self) {
        if self.plan.payload_depth == 0 {
            return;
        }
        // Seed: replicate the first input group out to 64 bits.
        let src = self.in_nets[0];
        let w = self.m.net_width(src);
        let reps = 64 / w + u32::from(64 % w != 0);
        let s = self.m.sig(src);
        let wide = self.m.arena.add(Expr::Repeat(reps, s));
        let total = reps * w;
        let mut acc = self.m.arena.add(Expr::Slice(wide, 63, 0));
        let _ = total;
        for k in 0..self.plan.payload_depth {
            let rot = self.m.arena.add(Expr::Shl(acc, (k as u32 % 13) + 1));
            let x = self.m.arena.add(Expr::Xor(acc, rot));
            let shr = self.m.arena.add(Expr::Shr(acc, 7));
            acc = self.m.arena.add(Expr::Add(x, shr));
        }
        let out = self.m.add_port("PAYLOAD", PortDir::Output, 64);
        self.m.net_mut(out).attrs.insert("checkpoint.kind".into(), "control".into());
        self.m.assign(out, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plans, Scale};

    fn plan_for(special: SpecialKind) -> LeafPlan {
        build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.special == special)
            .expect("plan exists")
    }

    #[test]
    fn generic_leaf_builds_and_validates() {
        let plans = build_plans(Scale::Small);
        for p in &plans {
            let m = build_leaf(p, None);
            assert!(m.validate().is_ok(), "{}", p.name);
            assert_eq!(
                m.outputs().count(),
                p.out_groups + 2, // +HE +PAYLOAD
                "{}: output count",
                p.name
            );
        }
    }

    #[test]
    fn entity_census_matches_plan() {
        let p = build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.special == SpecialKind::Generic)
            .unwrap();
        let m = build_leaf(&p, None);
        let entities = m
            .nets
            .iter()
            .filter(|n| n.attrs.get("checkpoint.kind").map(String::as_str) == Some("entity"))
            .count();
        let groups = m
            .nets
            .iter()
            .filter(|n| n.attrs.get("checkpoint.kind").map(String::as_str) == Some("input_group"))
            .count();
        assert_eq!(entities, p.entities);
        assert_eq!(groups, p.in_groups);
    }

    #[test]
    fn valid_addresses_are_91_unique_non_start() {
        let v = valid_addresses();
        assert_eq!(v.len(), 91);
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 91);
        assert!(!v.contains(&START_CMD));
    }

    #[test]
    fn clean_leaf_parity_invariant_holds_in_simulation() {
        use veridic_sim::{Simulator, Stimulus, UniformRandom};
        let p = plan_for(SpecialKind::Generic);
        let m = build_leaf(&p, None);
        let mut sim = Simulator::new(&m).unwrap();
        // Drive odd-parity input groups and random CMD.
        let mut rng = UniformRandom::new(11);
        for _ in 0..200 {
            for port in m.inputs().map(|p| (p.net, p.name.clone())).collect::<Vec<_>>() {
                let w = m.net_width(port.0);
                let mut v = rng.random_value(w);
                if m.net(port.0).attrs.get("checkpoint.kind").map(String::as_str)
                    == Some("input_group")
                {
                    // Force odd parity.
                    if !v.xor_reduce() {
                        v.set_bit(0, !v.bit(0));
                    }
                }
                sim.poke_net(port.0, v).unwrap();
            }
            sim.settle();
            assert!(sim.peek("HE").unwrap().is_zero(), "false alarm in clean design");
            sim.step();
        }
        let _ = &mut rng as &mut dyn Stimulus;
    }

    #[test]
    fn b0_bug_trips_he_quickly() {
        use veridic_sim::{Simulator, UniformRandom};
        let plans = build_plans(Scale::Small);
        let p = &plans[0]; // category A module 0 hosts B0
        let m = build_leaf(p, Some(BugId::B0));
        let mut sim = Simulator::new(&m).unwrap();
        let mut rng = UniformRandom::new(3);
        let mut fired = false;
        for _ in 0..50 {
            for port in m.inputs().map(|p| (p.net, p.name.clone())).collect::<Vec<_>>() {
                let w = m.net_width(port.0);
                let mut v = rng.random_value(w);
                if m.net(port.0).attrs.get("checkpoint.kind").map(String::as_str)
                    == Some("input_group")
                    && !v.xor_reduce()
                {
                    v.set_bit(0, !v.bit(0));
                }
                sim.poke_net(port.0, v).unwrap();
            }
            sim.settle();
            if !sim.peek("HE").unwrap().is_zero() {
                fired = true;
                break;
            }
            sim.step();
        }
        assert!(fired, "B0 must raise a false alarm within 50 random cycles");
    }

    #[test]
    fn decoder_builds_with_bugs() {
        let p = plan_for(SpecialKind::AddressDecoder);
        for bug in [None, Some(BugId::B5), Some(BugId::B6)] {
            let m = build_leaf(&p, bug);
            assert!(m.validate().is_ok());
            assert!(m.find_net("ADDR").is_some());
            assert!(m.find_net("started").is_some());
        }
    }

    #[test]
    fn csr_and_macro_build() {
        let csr = build_leaf(&plan_for(SpecialKind::CsrFile), Some(BugId::B1));
        assert!(csr.nets.iter().any(|n| n.name.starts_with("ent0_csr")));
        let mac = build_leaf(&plan_for(SpecialKind::MacroInterface), Some(BugId::B3));
        assert!(mac.find_net("MACRO_SIG").is_some());
        assert!(mac.find_net("warm_done").is_some());
    }
}
