//! Order-stress design: a register file whose *creation* order is
//! pessimal for BDDs.
//!
//! The module carries `pairs` twin registers `a<i>`/`b<i>` that both
//! sample input bit `DIN[i]` every cycle, declared in blocked order (all
//! `a`s, then all `b`s). The single output `MISMATCH` is the OR of all
//! `a<i> ^ b<i>` — combinationally false on every reachable state, so a
//! `MISMATCH`-never-fires property is provable, but the reached-state
//! BDD is the equality relation `a == b`, which needs ~2^pairs nodes
//! under the natural (blocked) variable order and ~3·pairs nodes once
//! the twins are interleaved. FORCE static ordering
//! (`CheckOptions::static_order`) recovers the interleaving from the
//! shared-input structure, which is exactly what the `order/` bench
//! family measures.

use veridic_netlist::{Expr, Module, PortDir, Value};

/// Builds the order-stress module with `pairs` twin-register pairs.
///
/// # Panics
///
/// Panics if `pairs` is zero or the generated module fails validation
/// (generator bug).
pub fn build_order_stress(pairs: u32) -> Module {
    assert!(pairs > 0, "order stress needs at least one register pair");
    let mut m = Module::new(format!("order_stress_{pairs}"));
    let din = m.add_port("DIN", PortDir::Input, pairs);
    // Blocked declaration order: every `a` register first, then every
    // `b`. Lowering preserves this order, so the natural BDD variable
    // order separates each twin from its partner by `pairs` positions.
    let mut a = Vec::with_capacity(pairs as usize);
    let mut b = Vec::with_capacity(pairs as usize);
    for i in 0..pairs {
        let q = m.add_net(format!("a{i}"), 1);
        let next = m.sig_bit(din, i);
        m.add_reg(q, next, Value::zero(1));
        a.push(q);
    }
    for i in 0..pairs {
        let q = m.add_net(format!("b{i}"), 1);
        let next = m.sig_bit(din, i);
        m.add_reg(q, next, Value::zero(1));
        b.push(q);
    }
    let mismatch = m.add_port("MISMATCH", PortDir::Output, 1);
    let mut acc = None;
    for i in 0..pairs as usize {
        let (sa, sb) = (m.sig(a[i]), m.sig(b[i]));
        let x = m.arena.add(Expr::Xor(sa, sb));
        acc = Some(match acc {
            None => x,
            Some(p) => m.arena.add(Expr::Or(p, x)),
        });
    }
    let e = acc.expect("pairs > 0"); // lint: allow
    m.assign(mismatch, e);
    m.validate().unwrap_or_else(|err| panic!("order stress module invalid: {err}")); // lint: allow
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_stress_lowers_with_blocked_register_order() {
        let m = build_order_stress(4);
        let lowered = m.to_aig().unwrap();
        let aig = &lowered.aig;
        assert_eq!(aig.latches().len(), 8);
        let names: Vec<&str> = aig.latches().iter().map(|l| l.name.as_str()).collect();
        // Natural order is blocked: all a's, then all b's.
        assert_eq!(
            names,
            ["a0[0]", "a1[0]", "a2[0]", "a3[0]", "b0[0]", "b1[0]", "b2[0]", "b3[0]"]
        );
    }

    #[test]
    fn mismatch_is_unreachable() {
        // a and b always load the same input bit, so the mismatch output
        // can never fire from the all-zero reset state.
        let m = build_order_stress(3);
        let lowered = m.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        let mismatch = m.ports.iter().find(|p| p.name == "MISMATCH").unwrap().net;
        aig.add_bad("mismatch".to_string(), lowered.bit(mismatch, 0));
        let v = veridic_mc::check(&aig, &veridic_mc::CheckOptions::default());
        assert!(v.verdict.is_proved());
    }
}
