//! Spec-compliant constrained-random stimulus — the realistic testbench
//! whose blind spots make bugs B1/B3/B5/B6 "hard to detect by logic
//! simulation" (Table 3).
//!
//! Two generators:
//!
//! * [`SpecCompliant`] — what a functional verification team writes:
//!   input groups carry correct odd parity, reserved CSR fields are
//!   written as zero (the spec says so), decode traffic follows the
//!   START→address protocol, and the macro behavioural model drives
//!   `MACRO_VALID` high with clean data from cycle 0 (the wrong model of
//!   bug B3's story).
//! * Plain [`veridic_sim::UniformRandom`] — the "just randomise
//!   everything" ablation, reported alongside in Table 3's bench.

use crate::leaf::{START_CMD, valid_addresses};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veridic_netlist::{Module, NetId, Value};
use veridic_sim::Stimulus;

/// Spec-compliant constrained-random driver for generated leaf modules.
#[derive(Debug)]
pub struct SpecCompliant {
    rng: StdRng,
    /// Fraction (0..=100) of decoder transactions vs. idle traffic.
    decode_percent: u32,
    /// Cycle phase of the decoder protocol driver.
    decode_phase: u32,
    valid: Vec<u8>,
}

impl SpecCompliant {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        SpecCompliant {
            rng: StdRng::seed_from_u64(seed),
            decode_percent: 34,
            decode_phase: 0,
            valid: valid_addresses(),
        }
    }

    /// Adjusts the share of decode transactions (percent, 0..=100).
    pub fn with_decode_percent(mut self, pct: u32) -> Self {
        self.decode_percent = pct.min(100);
        self
    }

    /// A random value of `width` bits with odd overall parity.
    fn odd_parity_value(&mut self, width: u32) -> Value {
        let mut v = Value::zero(width);
        for b in 0..width {
            if self.rng.gen_bool(0.5) {
                v.set_bit(b, true);
            }
        }
        if !v.xor_reduce() {
            v.set_bit(0, !v.bit(0));
        }
        v
    }

    /// Odd-parity value with the reserved bit (bit 2) cleared —
    /// spec-compliant CSR write data.
    fn csr_write_value(&mut self, width: u32) -> Value {
        let mut v = self.odd_parity_value(width);
        if width > 2 && v.bit(2) {
            // Clear the reserved bit and fix parity on bit 0.
            v.set_bit(2, false);
            v.set_bit(0, !v.bit(0));
        }
        v
    }
}

impl Stimulus for SpecCompliant {
    fn drive(&mut self, module: &Module, _cycle: u64) -> Vec<(NetId, Value)> {
        let special = module
            .attrs
            .get("chip.special")
            .map(String::as_str)
            .unwrap_or("Generic")
            .to_string();
        let mut out = Vec::new();
        let ports: Vec<(NetId, String, u32)> = module
            .inputs()
            .map(|p| (p.net, p.name.clone(), module.net_width(p.net)))
            .collect();
        // Decoder protocol phase machine.
        let mut addr_value: u64 = 0;
        if special == "AddressDecoder" {
            match self.decode_phase {
                0 => {
                    if self.rng.gen_range(0..100) < self.decode_percent {
                        addr_value = START_CMD as u64;
                        self.decode_phase = 1;
                    } else {
                        // Idle traffic: a random non-command byte.
                        addr_value = self.rng.gen_range(0..256);
                        if addr_value == START_CMD as u64 {
                            addr_value = 0;
                        }
                    }
                }
                _ => {
                    // Address phase: uniformly one of the 91 valid cases.
                    let i = self.rng.gen_range(0..self.valid.len());
                    addr_value = self.valid[i] as u64;
                    self.decode_phase = 0;
                }
            }
        }
        for (net, name, width) in ports {
            let kind = module
                .net(net)
                .attrs
                .get("checkpoint.kind")
                .map(String::as_str)
                .unwrap_or("");
            let v = match (kind, name.as_str()) {
                ("input_group", _) => {
                    if special == "CsrFile" && name == "I0" {
                        self.csr_write_value(width)
                    } else {
                        // Includes MACRO_SIG: the behavioural macro model
                        // (wrongly) drives clean data from cycle 0.
                        self.odd_parity_value(width)
                    }
                }
                (_, "MACRO_VALID") => Value::from_u64(1, 1), // wrong model: always valid
                (_, "ADDR") => Value::from_u64(8, addr_value),
                (_, "CMD") => {
                    // Commands fire often (common transitions).
                    let mut v = Value::zero(width);
                    for b in 0..width {
                        if self.rng.gen_bool(0.5) {
                            v.set_bit(b, true);
                        }
                    }
                    v
                }
                _ => {
                    // Error-injection ports and other controls: tied off,
                    // exactly as the silicon wrapper does.
                    Value::zero(width)
                }
            };
            out.push((net, v));
        }
        out
    }
}

/// The testbench scoreboard: watches a settled leaf module for the
/// observable symptoms of a data-integrity bug.
///
/// Returns a symptom name when one is visible this cycle:
/// * `"false_alarm"` — HE asserted although the stimulus was clean;
/// * `"bad_output_parity"` — a parity-protected output group lost odd
///   parity.
pub fn observe_symptom(sim: &veridic_sim::Simulator<'_>) -> Option<&'static str> {
    let m = sim.module();
    if !sim.peek("HE").ok()?.is_zero() {
        return Some("false_alarm");
    }
    for p in m.outputs() {
        if m.net(p.net).attrs.get("checkpoint.kind").map(String::as_str) == Some("output_group")
            && !sim.peek_net(p.net).xor_reduce()
        {
            return Some("bad_output_parity");
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugId;
    use crate::leaf::build_leaf;
    use crate::plan::{build_plans, Scale, SpecialKind};
    use veridic_sim::Simulator;

    fn plan_for(special: SpecialKind) -> crate::plan::LeafPlan {
        build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.special == special)
            .unwrap()
    }

    fn detect(m: &veridic_netlist::Module, seed: u64, cycles: u64) -> Option<u64> {
        let mut sim = Simulator::new(m).unwrap();
        let mut stim = SpecCompliant::new(seed);
        sim.run_with(&mut stim, cycles, observe_symptom)
            .unwrap()
            .map(|(c, _)| c)
    }

    #[test]
    fn clean_modules_show_no_symptoms() {
        for p in build_plans(Scale::Small) {
            let m = build_leaf(&p, None);
            assert_eq!(detect(&m, 5, 300), None, "{}", p.name);
        }
    }

    #[test]
    fn easy_bugs_detected_quickly() {
        let plans = build_plans(Scale::Small);
        let b0 = build_leaf(&plans[0], Some(BugId::B0));
        assert!(detect(&b0, 1, 500).is_some(), "B0 detectable");
        let c0 = plans.iter().find(|p| p.category == crate::plan::Category::C).unwrap();
        let b2 = build_leaf(c0, Some(BugId::B2));
        assert!(detect(&b2, 1, 500).is_some(), "B2 detectable");
        let d0 = plans.iter().find(|p| p.category == crate::plan::Category::D).unwrap();
        let b4 = build_leaf(d0, Some(BugId::B4));
        assert!(detect(&b4, 1, 500).is_some(), "B4 detectable");
    }

    #[test]
    fn b1_and_b3_invisible_to_spec_compliant_stimulus() {
        let b1 = build_leaf(&plan_for(SpecialKind::CsrFile), Some(BugId::B1));
        assert_eq!(detect(&b1, 1, 3_000), None, "spec tests write 0 to reserved fields");
        let b3 = build_leaf(&plan_for(SpecialKind::MacroInterface), Some(BugId::B3));
        assert_eq!(detect(&b3, 1, 3_000), None, "macro model is wrong in sim");
    }

    #[test]
    fn b5_b6_need_many_cycles() {
        let p = plan_for(SpecialKind::AddressDecoder);
        let m = build_leaf(&p, Some(BugId::B5));
        // Detectable eventually...
        let lat = detect(&m, 2, 60_000);
        assert!(lat.is_some(), "B5/B6 detectable with enough cycles");
        // ...but far slower than the easy bugs (hundreds of cycles at
        // least, vs <100 for B0/B2/B4).
        assert!(lat.unwrap() > 100, "B5 latency {lat:?} suspiciously low");
    }

    #[test]
    fn uniform_random_misses_decoder_protocol() {
        use veridic_sim::UniformRandom;
        // Fully random stimulus drives ADDR uniformly: the START→address
        // sequence almost never forms, so B5/B6 detection is much rarer
        // than with spec traffic. (Probabilistic, but with margin.)
        let p = plan_for(SpecialKind::AddressDecoder);
        let m = build_leaf(&p, Some(BugId::B5));
        let mut sim = Simulator::new(&m).unwrap();
        let mut stim = UniformRandom::new(9);
        let hit = sim
            .run_with(&mut stim, 2_000, |s| {
                // Random stimulus breaks input parity constantly, so HE
                // fires by design; only output parity is a bug symptom.
                let m = s.module();
                for p in m.outputs() {
                    if m.net(p.net).attrs.get("checkpoint.kind").map(String::as_str)
                        == Some("output_group")
                        && m.net_width(p.net) == 8
                        && !s.peek_net(p.net).xor_reduce()
                    {
                        return Some(());
                    }
                }
                None
            })
            .unwrap();
        assert!(hit.is_none(), "uniform random should not hit the decoder bug in 2k cycles");
    }
}
