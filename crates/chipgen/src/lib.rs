//! # veridic-chipgen
//!
//! Deterministic generator for the synthetic "component chip for server
//! platforms" that the paper's methodology is evaluated on: 95 leaf
//! modules in five categories (A–E), every data path / FSM / counter
//! parity-protected, with a checkpoint census that reproduces Table 2
//! exactly (1306 P0 + 200 P1 + 520 P2 + 21 P3 = 2047 properties) and the
//! seven seeded logic bugs of Table 3.
//!
//! ```
//! use veridic_chipgen::{Chip, ChipConfig, Scale};
//!
//! let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
//! assert!(chip.modules().len() >= 10);
//! assert!(chip.design().module(chip.modules()[0].name()).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bugs;
mod leaf;
mod order;
mod plan;
mod scenario;

pub use bugs::{bug_for_module, BugId, PropertyType};
pub use order::build_order_stress;

pub use leaf::{
    build_leaf, valid_addresses, EntityKind, B5_CASE, B6_CASE, DECODER_WIDTH, GROUP_WIDTH,
    START_CMD,
};
pub use plan::{
    build_plans, distribute, Category, CategoryTotals, LeafPlan, Scale, SpecialKind, FULL_TOTALS,
    SMALL_TOTALS,
};
pub use scenario::{observe_symptom, SpecCompliant};

use std::collections::BTreeMap;
use veridic_netlist::{Conn, Design, Instance, Module, PortDir};

/// Chip generation options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChipConfig {
    /// Full (paper census) or small (test) scale.
    pub scale: Scale,
    /// Seed the seven Table-3 bugs.
    pub with_bugs: bool,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig { scale: Scale::Full, with_bugs: false }
    }
}

/// Metadata for one generated leaf module.
#[derive(Clone, Debug)]
pub struct ModuleInfo {
    plan: LeafPlan,
    bug: Option<BugId>,
}

impl ModuleInfo {
    /// The module's name in the design.
    pub fn name(&self) -> &str {
        &self.plan.name
    }

    /// The build plan (checkpoint counts).
    pub fn plan(&self) -> &LeafPlan {
        &self.plan
    }

    /// The bug seeded into this module, if any. The address decoder
    /// reports [`BugId::B5`] but hosts both B5 and B6 (two independent
    /// bad decode cases).
    pub fn bug(&self) -> Option<BugId> {
        self.bug
    }
}

/// A generated chip: the design plus per-module metadata.
#[derive(Clone, Debug)]
pub struct Chip {
    design: Design,
    modules: Vec<ModuleInfo>,
    config: ChipConfig,
}

impl Chip {
    /// Generates the chip deterministically from the configuration.
    pub fn generate(config: &ChipConfig) -> Chip {
        let plans = build_plans(config.scale);
        let mut design = Design::new("chip_top");
        let mut modules = Vec::new();
        let mut cat_index: BTreeMap<Category, usize> = BTreeMap::new();
        for p in &plans {
            let i = *cat_index.entry(p.category).or_insert(0);
            *cat_index.get_mut(&p.category).unwrap() += 1;
            let bug = if config.with_bugs { bug_for_module(p, i) } else { None };
            let m = build_leaf(p, bug);
            design.add_module(m);
            modules.push(ModuleInfo { plan: p.clone(), bug });
        }
        design.add_module(Self::build_top(&design, &plans));
        Chip { design, modules, config: *config }
    }

    /// Builds a chip-level wrapper instantiating every leaf: leaf inputs
    /// become top-level inputs (prefixed with the module name) and the
    /// per-leaf HE reports are OR-reduced into one chip-level `CHIP_HE`.
    fn build_top(design: &Design, plans: &[LeafPlan]) -> Module {
        let mut top = Module::new("chip_top");
        let mut he_bits = Vec::new();
        for p in plans {
            let leaf = design.module(&p.name).expect("leaf exists");
            let mut conns = BTreeMap::new();
            for port in &leaf.ports {
                let w = leaf.net_width(port.net);
                match port.dir {
                    PortDir::Input => {
                        let top_net =
                            top.add_port(format!("{}_{}", p.name, port.name), PortDir::Input, w);
                        let e = top.sig(top_net);
                        conns.insert(port.name.clone(), Conn::In(e));
                    }
                    PortDir::Output => {
                        let top_net = top.add_net(format!("{}_{}", p.name, port.name), w);
                        conns.insert(port.name.clone(), Conn::Out(top_net));
                        if port.name == "HE" {
                            he_bits.push(top_net);
                        } else {
                            top.expose(top_net, PortDir::Output);
                        }
                    }
                }
            }
            top.add_instance(Instance {
                module: p.name.clone(),
                name: format!("u_{}", p.name),
                conns,
            });
        }
        let chip_he = top.add_port("CHIP_HE", PortDir::Output, 1);
        let mut acc = None;
        for net in he_bits {
            let s = top.sig(net);
            let r = top.arena.add(veridic_netlist::Expr::RedOr(s));
            acc = Some(match acc {
                None => r,
                Some(a) => top.arena.add(veridic_netlist::Expr::Or(a, r)),
            });
        }
        let e = acc.expect("at least one leaf");
        top.assign(chip_he, e);
        top
    }

    /// The design (leaves + `chip_top`).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Mutable access (the Verifiable-RTL transform rewrites modules).
    pub fn design_mut(&mut self) -> &mut Design {
        &mut self.design
    }

    /// Per-module metadata, in generation order.
    pub fn modules(&self) -> &[ModuleInfo] {
        &self.modules
    }

    /// The generation configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// All bugs present in this chip (the decoder contributes both B5 and
    /// B6).
    pub fn bugs(&self) -> Vec<(String, BugId)> {
        let mut out = Vec::new();
        for mi in &self.modules {
            match mi.bug {
                Some(BugId::B5) => {
                    out.push((mi.plan.name.clone(), BugId::B5));
                    out.push((mi.plan.name.clone(), BugId::B6));
                }
                Some(b) => out.push((mi.plan.name.clone(), b)),
                None => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_chip_generates_and_validates() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
        for mi in chip.modules() {
            let m = chip.design().module(mi.name()).unwrap();
            assert!(m.validate().is_ok(), "{}", mi.name());
        }
        assert_eq!(chip.bugs().len(), 7, "all seven Table-3 bugs present");
    }

    #[test]
    fn clean_chip_has_no_bugs() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        assert!(chip.bugs().is_empty());
    }

    #[test]
    fn top_wrapper_flattens() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        let flat = chip.design().flatten().unwrap();
        assert!(flat.validate().is_ok());
        assert!(flat.regs.len() > 50, "chip has substantial state: {}", flat.regs.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
        let b = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
        for (ma, mb) in a.modules().iter().zip(b.modules()) {
            let da = a.design().module(ma.name()).unwrap();
            let db = b.design().module(mb.name()).unwrap();
            assert_eq!(da.nets.len(), db.nets.len());
            assert_eq!(da.regs.len(), db.regs.len());
            assert_eq!(da.assigns.len(), db.assigns.len());
        }
    }

    #[test]
    fn full_chip_module_count_matches_table2() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Full, with_bugs: false });
        assert_eq!(chip.modules().len(), 95);
        let total_p: usize = chip
            .modules()
            .iter()
            .map(|m| m.plan().p0() + m.plan().p1() + m.plan().p2() + m.plan().p3)
            .sum();
        assert_eq!(total_p, 2047);
    }

    #[test]
    fn exported_verilog_reparses() {
        // The generated chip survives a Verilog emit → parse → elaborate
        // round trip (leaf level).
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        let name = chip.modules()[0].name();
        let m = chip.design().module(name).unwrap();
        let src = veridic_verilog::emit_module(m, Some(chip.design()));
        let ast = veridic_verilog::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let d2 = veridic_verilog::elaborate(&ast, name).unwrap();
        let m2 = d2.module(name).unwrap();
        assert_eq!(m.regs.len(), m2.regs.len());
        assert_eq!(m.ports.len(), m2.ports.len());
    }
}
