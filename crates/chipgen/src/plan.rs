//! Category plans: how many submodules, checkpoints and properties each
//! module category contributes, calibrated so the full-scale chip
//! reproduces Table 2 of the paper *exactly*:
//!
//! | Cat | #Sub | P0   | P1  | P2  | P3 | Bugs |
//! |-----|------|------|-----|-----|----|------|
//! | A   | 19   | 204  | 23  | 113 | 15 | 3    |
//! | B   | 2    | 25   | 23  | 82  | 0  | 0    |
//! | C   | 13   | 43   | 20  | 38  | 0  | 1    |
//! | D   | 3    | 70   | 46  | 137 | 6  | 1    |
//! | E   | 58   | 964  | 88  | 150 | 0  | 2    |
//!
//! Property counts map to structure as: `P0 = entities + input groups`
//! (one error-detection check per injectable entity plus one per
//! parity-protected input group), `P1 = HE bits` (one soundness check per
//! hardware-error report bit), `P2 = output groups`, `P3 = legal-state
//! properties on selected FSMs`.

use std::fmt;

/// Module categories from Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Category A: control-heavy units (CSR file, macro interfaces, ...).
    A,
    /// Category B: two large crossbar-style units.
    B,
    /// Category C: counter pipes.
    C,
    /// Category D: wide output staging units.
    D,
    /// Category E: the many small protocol/decoder units.
    E,
}

impl Category {
    /// All categories in table order.
    pub const ALL: [Category; 5] = [Category::A, Category::B, Category::C, Category::D, Category::E];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::A => "A",
            Category::B => "B",
            Category::C => "C",
            Category::D => "D",
            Category::E => "E",
        };
        write!(f, "{s}")
    }
}

/// Structural role of a generated leaf module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecialKind {
    /// Plain leaf following the Figure-1 template.
    Generic,
    /// CSR register file with a reserved field (hosts bug B1).
    CsrFile,
    /// Hard-macro interface with a warm-up contract (hosts bug B3).
    MacroInterface,
    /// The 91-valid-case address decoder (hosts bugs B5/B6).
    AddressDecoder,
}

/// Build plan for one leaf module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafPlan {
    /// Module name (`mod_a00`, ...).
    pub name: String,
    /// Category.
    pub category: Category,
    /// Structural role.
    pub special: SpecialKind,
    /// Number of injectable entities (FSMs / counters / datapath regs).
    pub entities: usize,
    /// Number of parity-protected input groups.
    pub in_groups: usize,
    /// Width of the HE (hardware error report) output.
    pub he_bits: usize,
    /// Number of parity-protected output groups.
    pub out_groups: usize,
    /// Number of legal-state (P3) properties to emit for this module.
    pub p3: usize,
    /// Depth of the 64-bit payload pipeline (non-checkpointed bulk
    /// logic). Calibrated per category so the injection-feature area
    /// overhead lands where Table 4 reports it.
    pub payload_depth: usize,
}

impl LeafPlan {
    /// P0 property count this module will contribute.
    pub fn p0(&self) -> usize {
        self.entities + self.in_groups
    }

    /// P1 property count.
    pub fn p1(&self) -> usize {
        self.he_bits
    }

    /// P2 property count.
    pub fn p2(&self) -> usize {
        self.out_groups
    }
}

/// Scale of the generated chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's census: 95 leaf modules, 2047 properties.
    Full,
    /// A reduced chip for fast tests: same structure (all special
    /// modules present), an order of magnitude fewer modules.
    Small,
}

/// Per-category totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CategoryTotals {
    /// Category name.
    pub category: Category,
    /// Number of submodules.
    pub submodules: usize,
    /// P0 (error-detection) properties.
    pub p0: usize,
    /// P1 (soundness) properties.
    pub p1: usize,
    /// P2 (output-integrity) properties.
    pub p2: usize,
    /// P3 (other) properties.
    pub p3: usize,
}

/// Table 2 targets at full scale.
pub const FULL_TOTALS: [CategoryTotals; 5] = [
    CategoryTotals { category: Category::A, submodules: 19, p0: 204, p1: 23, p2: 113, p3: 15 },
    CategoryTotals { category: Category::B, submodules: 2, p0: 25, p1: 23, p2: 82, p3: 0 },
    CategoryTotals { category: Category::C, submodules: 13, p0: 43, p1: 20, p2: 38, p3: 0 },
    CategoryTotals { category: Category::D, submodules: 3, p0: 70, p1: 46, p2: 137, p3: 6 },
    CategoryTotals { category: Category::E, submodules: 58, p0: 964, p1: 88, p2: 150, p3: 0 },
];

/// Reduced targets for [`Scale::Small`] (structure preserved: every
/// special module and every property type still appears).
pub const SMALL_TOTALS: [CategoryTotals; 5] = [
    CategoryTotals { category: Category::A, submodules: 3, p0: 24, p1: 4, p2: 12, p3: 2 },
    CategoryTotals { category: Category::B, submodules: 1, p0: 8, p1: 6, p2: 10, p3: 0 },
    CategoryTotals { category: Category::C, submodules: 2, p0: 6, p1: 3, p2: 6, p3: 0 },
    CategoryTotals { category: Category::D, submodules: 1, p0: 10, p1: 6, p2: 12, p3: 2 },
    CategoryTotals { category: Category::E, submodules: 4, p0: 32, p1: 6, p2: 9, p3: 0 },
];

/// Splits `total` into `n` near-equal parts (first `total % n` parts get
/// one extra), preserving the sum.
pub fn distribute(total: usize, n: usize) -> Vec<usize> {
    assert!(n > 0, "cannot distribute across zero modules");
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// Expands category totals into per-module plans.
///
/// Special modules are pinned: `A[1]` is the CSR file, `A[2]` the macro
/// interface, and the last E module the address decoder. Their checkpoint
/// counts still follow the distribution, so the census is unaffected.
pub fn build_plans(scale: Scale) -> Vec<LeafPlan> {
    let totals = match scale {
        Scale::Full => &FULL_TOTALS,
        Scale::Small => &SMALL_TOTALS,
    };
    let mut plans = Vec::new();
    for t in totals {
        let n = t.submodules;
        let p0s = distribute(t.p0, n);
        let p1s = distribute(t.p1, n);
        let p2s = distribute(t.p2, n);
        let p3s = distribute(t.p3, n);
        for i in 0..n {
            let special = match (t.category, i) {
                (Category::A, 1) if n > 1 => SpecialKind::CsrFile,
                (Category::A, 2) if n > 2 => SpecialKind::MacroInterface,
                (Category::E, k) if k + 1 == n => SpecialKind::AddressDecoder,
                _ => SpecialKind::Generic,
            };
            // Input groups: roughly a sixth of P0, at least 1 (P0 >= 2
            // everywhere in the calibrated tables).
            let p0 = p0s[i];
            assert!(p0 >= 2, "P0 share must cover >=1 entity and >=1 input group");
            let in_groups = (p0 / 6).clamp(1, p0 - 1);
            let entities = p0 - in_groups;
            let payload_depth = match scale {
                // Calibrated against the gate-area model so the Table-4
                // per-category increases land near the paper's numbers
                // (A 1.4 %, B 0.4 %, D 0.2 %; C/E chosen mid-range).
                Scale::Full => match t.category {
                    Category::A => 10,
                    Category::B => 40,
                    Category::C => 2,
                    Category::D => 156,
                    Category::E => 16,
                },
                Scale::Small => 1,
            };
            plans.push(LeafPlan {
                name: format!("mod_{}{:02}", t.category.to_string().to_lowercase(), i),
                category: t.category,
                special,
                entities,
                in_groups,
                he_bits: p1s[i].max(1),
                out_groups: p2s[i].max(1),
                p3: p3s[i],
                payload_depth,
            });
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_preserves_sum() {
        for (total, n) in [(204, 19), (25, 2), (43, 13), (70, 3), (964, 58), (0, 5), (7, 7)] {
            let parts = distribute(total, n);
            assert_eq!(parts.len(), n);
            assert_eq!(parts.iter().sum::<usize>(), total);
            let min = parts.iter().min().unwrap();
            let max = parts.iter().max().unwrap();
            assert!(max - min <= 1, "near-equal split");
        }
    }

    #[test]
    fn full_plans_reproduce_table2_totals() {
        let plans = build_plans(Scale::Full);
        assert_eq!(plans.len(), 95);
        for t in &FULL_TOTALS {
            let cat: Vec<&LeafPlan> = plans.iter().filter(|p| p.category == t.category).collect();
            assert_eq!(cat.len(), t.submodules, "{}", t.category);
            assert_eq!(cat.iter().map(|p| p.p0()).sum::<usize>(), t.p0, "{} P0", t.category);
            assert_eq!(cat.iter().map(|p| p.p1()).sum::<usize>(), t.p1, "{} P1", t.category);
            assert_eq!(cat.iter().map(|p| p.p2()).sum::<usize>(), t.p2, "{} P2", t.category);
            assert_eq!(cat.iter().map(|p| p.p3).sum::<usize>(), t.p3, "{} P3", t.category);
        }
        // Grand totals: 2047 properties, of which 1306+200+520+21.
        let p0: usize = plans.iter().map(|p| p.p0()).sum();
        let p1: usize = plans.iter().map(|p| p.p1()).sum();
        let p2: usize = plans.iter().map(|p| p.p2()).sum();
        let p3: usize = plans.iter().map(|p| p.p3).sum();
        assert_eq!((p0, p1, p2, p3), (1306, 200, 520, 21));
        assert_eq!(p0 + p1 + p2 + p3, 2047);
    }

    #[test]
    fn special_modules_are_pinned() {
        let plans = build_plans(Scale::Full);
        assert_eq!(plans[1].special, SpecialKind::CsrFile);
        assert_eq!(plans[2].special, SpecialKind::MacroInterface);
        let decoder: Vec<&LeafPlan> = plans
            .iter()
            .filter(|p| p.special == SpecialKind::AddressDecoder)
            .collect();
        assert_eq!(decoder.len(), 1);
        assert_eq!(decoder[0].category, Category::E);
    }

    #[test]
    fn small_plans_keep_structure() {
        let plans = build_plans(Scale::Small);
        assert_eq!(plans.len(), 11);
        assert!(plans.iter().any(|p| p.special == SpecialKind::CsrFile));
        assert!(plans.iter().any(|p| p.special == SpecialKind::MacroInterface));
        assert!(plans.iter().any(|p| p.special == SpecialKind::AddressDecoder));
        assert!(plans.iter().any(|p| p.p3 > 0));
    }

    #[test]
    fn every_plan_is_buildable() {
        for scale in [Scale::Full, Scale::Small] {
            for p in build_plans(scale) {
                assert!(p.entities >= 1, "{}", p.name);
                assert!(p.in_groups >= 1, "{}", p.name);
                assert!(p.he_bits >= 1, "{}", p.name);
                assert!(p.out_groups >= 1, "{}", p.name);
            }
        }
    }
}
