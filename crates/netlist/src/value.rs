//! Arbitrary-width two-state bit-vector values.
//!
//! [`Value`] is the constant domain of the netlist IR: every literal in an
//! RTL expression, every register reset value and every simulation result is
//! a `Value`. Bits are stored little-endian in 64-bit words; all operations
//! keep the invariant that bits above `width` are zero.

use std::fmt;

/// An arbitrary-width two-state (0/1) bit-vector constant.
///
/// # Examples
///
/// ```
/// use veridic_netlist::Value;
///
/// let v = Value::from_u64(4, 0b1010);
/// assert_eq!(v.bit(1), true);
/// assert_eq!(v.xor_reduce(), false);
/// assert_eq!(v.to_string(), "4'b1010");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value {
    width: u32,
    words: Vec<u64>,
}

fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl Value {
    /// Creates an all-zero value of the given width.
    ///
    /// Zero-width values are permitted and behave as the empty bit string.
    pub fn zero(width: u32) -> Self {
        Value { width, words: vec![0; words_for(width)] }
    }

    /// Creates an all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut v = Value { width, words: vec![!0u64; words_for(width)] };
        v.mask_top();
        v
    }

    /// Creates a value from the low `width` bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has significant bits above `width`.
    pub fn from_u64(width: u32, bits: u64) -> Self {
        if width < 64 {
            assert!(
                bits >> width == 0,
                "literal {bits:#x} does not fit in {width} bits"
            );
        }
        let mut v = Value::zero(width);
        if !v.words.is_empty() {
            v.words[0] = bits;
        }
        v.mask_top();
        v
    }

    /// Creates a single-bit value.
    pub fn bit_value(b: bool) -> Self {
        Value::from_u64(1, b as u64)
    }

    /// Creates a value from booleans listed LSB-first.
    pub fn from_bits_lsb_first<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = Value::zero(bits.len() as u32);
        for (i, b) in bits.iter().enumerate() {
            v.set_bit(i as u32, *b);
        }
        v
    }

    /// The number of bits in this value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u32, b: bool) {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        if b {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Returns the value as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 64 bits.
    pub fn to_u64(&self) -> u64 {
        for w in &self.words[1..] {
            assert_eq!(*w, 0, "value wider than 64 bits");
        }
        self.words.first().copied().unwrap_or(0)
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// XOR-reduction of all bits (parity).
    pub fn xor_reduce(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// AND-reduction of all bits. The reduction of a zero-width value is true.
    pub fn and_reduce(&self) -> bool {
        self.count_ones() == self.width
    }

    /// OR-reduction of all bits.
    pub fn or_reduce(&self) -> bool {
        !self.is_zero()
    }

    /// Concatenates `hi` above `self` (`self` keeps the low bits).
    pub fn concat(&self, hi: &Value) -> Value {
        let mut out = Value::zero(self.width + hi.width);
        for i in 0..self.width {
            out.set_bit(i, self.bit(i));
        }
        for i in 0..hi.width {
            out.set_bit(self.width + i, hi.bit(i));
        }
        out
    }

    /// Extracts bits `lo..=hi` as a new value.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Value {
        assert!(hi >= lo && hi < self.width, "bad slice [{hi}:{lo}] of width {}", self.width);
        let mut out = Value::zero(hi - lo + 1);
        for i in lo..=hi {
            out.set_bit(i - lo, self.bit(i));
        }
        out
    }

    /// Zero-extends or truncates to `width`.
    pub fn resize(&self, width: u32) -> Value {
        let mut out = Value::zero(width);
        for i in 0..width.min(self.width) {
            out.set_bit(i, self.bit(i));
        }
        out
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Value {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_top();
        out
    }

    fn zip_with(&self, rhs: &Value, f: impl Fn(u64, u64) -> u64) -> Value {
        assert_eq!(self.width, rhs.width, "width mismatch in bitwise op");
        let words = self
            .words
            .iter()
            .zip(&rhs.words)
            .map(|(a, b)| f(*a, *b))
            .collect();
        let mut out = Value { width: self.width, words };
        out.mask_top();
        out
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&self, rhs: &Value) -> Value {
        self.zip_with(rhs, |a, b| a & b)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&self, rhs: &Value) -> Value {
        self.zip_with(rhs, |a, b| a | b)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&self, rhs: &Value) -> Value {
        self.zip_with(rhs, |a, b| a ^ b)
    }

    /// Wrapping addition at this width. Panics on width mismatch.
    pub fn add(&self, rhs: &Value) -> Value {
        assert_eq!(self.width, rhs.width, "width mismatch in add");
        let mut out = Value::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.words.len() {
            let (s1, c1) = self.words[i].overflowing_add(rhs.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Wrapping subtraction at this width. Panics on width mismatch.
    pub fn sub(&self, rhs: &Value) -> Value {
        // a - b == a + ~b + 1 at fixed width.
        let one = {
            let mut v = Value::zero(self.width);
            if self.width > 0 {
                v.set_bit(0, true);
            }
            v
        };
        self.add(&rhs.not()).add(&one)
    }

    /// Wrapping multiplication at this width. Panics on width mismatch.
    pub fn mul(&self, rhs: &Value) -> Value {
        assert_eq!(self.width, rhs.width, "width mismatch in mul");
        let mut acc = Value::zero(self.width);
        let mut addend = self.clone();
        for i in 0..self.width {
            if rhs.bit(i) {
                acc = acc.add(&addend);
            }
            addend = addend.shl(1);
        }
        acc
    }

    /// Logical shift left by `n` (bits shifted out are lost).
    pub fn shl(&self, n: u32) -> Value {
        let mut out = Value::zero(self.width);
        for i in n..self.width {
            out.set_bit(i, self.bit(i - n));
        }
        out
    }

    /// Logical shift right by `n`.
    pub fn shr(&self, n: u32) -> Value {
        let mut out = Value::zero(self.width);
        if n < self.width {
            for i in 0..self.width - n {
                out.set_bit(i, self.bit(i + n));
            }
        }
        out
    }

    /// Unsigned less-than. Panics on width mismatch.
    pub fn ult(&self, rhs: &Value) -> bool {
        assert_eq!(self.width, rhs.width, "width mismatch in compare");
        for i in (0..self.words.len()).rev() {
            if self.words[i] != rhs.words[i] {
                return self.words[i] < rhs.words[i];
            }
        }
        false
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        // Normalise word count (guards against over-long vectors from concat).
        self.words.truncate(words_for(self.width));
        while self.words.len() < words_for(self.width) {
            self.words.push(0);
        }
    }
}

impl fmt::Display for Value {
    /// Formats as a Verilog binary literal, e.g. `4'b1010`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        if self.width == 0 {
            return write!(f, "0");
        }
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h", self.width)?;
        let digits = (self.width as usize).div_ceil(4);
        for d in (0..digits).rev() {
            let mut nib = 0u8;
            for b in 0..4 {
                let i = (d * 4 + b) as u32;
                if i < self.width && self.bit(i) {
                    nib |= 1 << b;
                }
            }
            write!(f, "{:x}", nib)?;
        }
        Ok(())
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        assert!(Value::zero(130).is_zero());
        let v = Value::ones(130);
        assert_eq!(v.count_ones(), 130);
        assert!(v.and_reduce());
    }

    #[test]
    fn from_u64_masks_and_checks() {
        let v = Value::from_u64(4, 0b1010);
        assert_eq!(v.to_u64(), 0b1010);
        assert_eq!(v.width(), 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_rejects_oversized() {
        let _ = Value::from_u64(3, 0b1010);
    }

    #[test]
    fn bit_roundtrip_across_word_boundary() {
        let mut v = Value::zero(100);
        v.set_bit(63, true);
        v.set_bit(64, true);
        v.set_bit(99, true);
        assert!(v.bit(63) && v.bit(64) && v.bit(99));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn parity_reductions() {
        let v = Value::from_u64(8, 0b1011_0001);
        assert_eq!(v.count_ones(), 4);
        assert!(!v.xor_reduce());
        assert!(v.or_reduce());
        assert!(!v.and_reduce());
        assert!(Value::zero(0).and_reduce());
        assert!(!Value::zero(0).or_reduce());
    }

    #[test]
    fn concat_and_slice() {
        let lo = Value::from_u64(4, 0b0011);
        let hi = Value::from_u64(4, 0b1100);
        let c = lo.concat(&hi);
        assert_eq!(c.width(), 8);
        assert_eq!(c.to_u64(), 0b1100_0011);
        assert_eq!(c.slice(7, 4).to_u64(), 0b1100);
        assert_eq!(c.slice(3, 0).to_u64(), 0b0011);
        assert_eq!(c.slice(4, 1).to_u64(), 0b1000_0011 >> 1 & 0xF);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Value::from_u64(4, 0xF);
        let b = Value::from_u64(4, 1);
        assert_eq!(a.add(&b).to_u64(), 0);
        assert_eq!(b.sub(&a).to_u64(), 2);
        let c = Value::from_u64(4, 5);
        assert_eq!(c.mul(&c).to_u64(), 25 % 16);
    }

    #[test]
    fn wide_arithmetic_carries_across_words() {
        let a = Value::ones(64).resize(65);
        let b = Value::from_u64(65, 1);
        let s = a.add(&b);
        assert!(s.bit(64));
        assert_eq!(s.slice(63, 0).to_u64(), 0);
    }

    #[test]
    fn shifts() {
        let v = Value::from_u64(8, 0b0000_1111);
        assert_eq!(v.shl(4).to_u64(), 0b1111_0000);
        assert_eq!(v.shr(2).to_u64(), 0b0000_0011);
        assert_eq!(v.shl(9).to_u64(), 0);
        assert_eq!(v.shr(9).to_u64(), 0);
    }

    #[test]
    fn compare() {
        let a = Value::from_u64(8, 3);
        let b = Value::from_u64(8, 200);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
        assert!(!a.ult(&a));
    }

    #[test]
    fn display_formats() {
        let v = Value::from_u64(4, 0b1010);
        assert_eq!(format!("{v}"), "4'b1010");
        assert_eq!(format!("{v:x}"), "4'ha");
        let w = Value::from_u64(9, 0x1ff);
        assert_eq!(format!("{w:x}"), "9'h1ff");
    }

    #[test]
    fn from_bits_lsb_first_orders_correctly() {
        let v = Value::from_bits_lsb_first([true, false, true]);
        assert_eq!(v.to_u64(), 0b101);
    }
}
