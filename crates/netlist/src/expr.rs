//! Word-level RTL expressions.
//!
//! Expressions are stored in a per-module [`ExprArena`] and referenced by
//! [`ExprId`]. The arena caches the width of every node so elaboration and
//! lowering never recompute it, and hash-conses nodes so structurally equal
//! expressions share one id.

use crate::value::Value;
use veridic_aig::hash::{FxHashMap, FxHashSet};
use std::fmt;

/// Identifier of a net within one module.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an expression node within one module's [`ExprArena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A single word-level expression node.
///
/// Operand widths are validated on construction by [`ExprArena::add`]:
/// bitwise and arithmetic binary operators require equal widths, `Mux`
/// requires a 1-bit condition and equal arm widths, and reductions produce
/// 1-bit results.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// The value of a net.
    Net(NetId),
    /// Bitwise NOT.
    Not(ExprId),
    /// Bitwise AND of equal-width operands.
    And(ExprId, ExprId),
    /// Bitwise OR of equal-width operands.
    Or(ExprId, ExprId),
    /// Bitwise XOR of equal-width operands.
    Xor(ExprId, ExprId),
    /// AND-reduction to one bit.
    RedAnd(ExprId),
    /// OR-reduction to one bit.
    RedOr(ExprId),
    /// XOR-reduction (parity) to one bit.
    RedXor(ExprId),
    /// Wrapping addition at operand width.
    Add(ExprId, ExprId),
    /// Wrapping subtraction at operand width.
    Sub(ExprId, ExprId),
    /// Wrapping multiplication at operand width.
    Mul(ExprId, ExprId),
    /// Equality, 1-bit result.
    Eq(ExprId, ExprId),
    /// Inequality, 1-bit result.
    Ne(ExprId, ExprId),
    /// Unsigned less-than, 1-bit result.
    Ult(ExprId, ExprId),
    /// Unsigned less-or-equal, 1-bit result.
    Ule(ExprId, ExprId),
    /// Left shift by a constant amount.
    Shl(ExprId, u32),
    /// Logical right shift by a constant amount.
    Shr(ExprId, u32),
    /// 2:1 multiplexer: `cond ? then_ : else_`.
    Mux {
        /// 1-bit select.
        cond: ExprId,
        /// Value when `cond` is 1.
        then_: ExprId,
        /// Value when `cond` is 0.
        else_: ExprId,
    },
    /// Concatenation; operands listed MSB-first (Verilog `{a, b}` order).
    Concat(Vec<ExprId>),
    /// Replication `{n{e}}`.
    Repeat(u32, ExprId),
    /// Bit/part select `e[hi:lo]`.
    Slice(ExprId, u32, u32),
}

/// Hash-consing arena of [`Expr`] nodes with cached widths.
///
/// # Examples
///
/// ```
/// use veridic_netlist::{ExprArena, Expr, Value};
///
/// let mut arena = ExprArena::new();
/// let a = arena.add(Expr::Const(Value::from_u64(4, 3)));
/// let b = arena.add(Expr::Const(Value::from_u64(4, 3)));
/// assert_eq!(a, b); // hash-consed
/// assert_eq!(arena.width(a), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExprArena {
    nodes: Vec<Expr>,
    widths: Vec<u32>,
    dedup: FxHashMap<Expr, ExprId>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The widths table, indexed by net id. Nets are declared by the module,
    /// so the arena is told net widths lazily via [`ExprArena::add_with_net_width`].
    fn net_width(&self, _net: NetId) -> Option<u32> {
        None
    }

    /// Inserts a node, returning the id of an existing structurally equal
    /// node when possible.
    ///
    /// For `Expr::Net` nodes use [`ExprArena::net`] which supplies the width.
    ///
    /// # Panics
    ///
    /// Panics if operand widths are inconsistent (e.g. `And` of different
    /// widths, `Mux` with a non-1-bit condition) or if an operand id does not
    /// belong to this arena.
    pub fn add(&mut self, e: Expr) -> ExprId {
        let w = self.compute_width(&e);
        self.insert(e, w)
    }

    /// Inserts a net reference with its declared width.
    pub fn net(&mut self, net: NetId, width: u32) -> ExprId {
        self.insert(Expr::Net(net), width)
    }

    fn insert(&mut self, e: Expr, w: u32) -> ExprId {
        if let Some(id) = self.dedup.get(&e) {
            return *id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.dedup.insert(e.clone(), id);
        self.nodes.push(e);
        self.widths.push(w);
        id
    }

    /// Returns the node for an id.
    pub fn node(&self, id: ExprId) -> &Expr {
        &self.nodes[id.0 as usize]
    }

    /// Returns the cached width of a node.
    pub fn width(&self, id: ExprId) -> u32 {
        self.widths[id.0 as usize]
    }

    fn w(&self, id: ExprId) -> u32 {
        assert!(
            (id.0 as usize) < self.widths.len(),
            "expression id {id:?} does not belong to this arena"
        );
        self.widths[id.0 as usize]
    }

    fn compute_width(&self, e: &Expr) -> u32 {
        match e {
            Expr::Const(v) => v.width(),
            Expr::Net(n) => self
                .net_width(*n)
                .expect("use ExprArena::net to create net references"), // lint: allow
            Expr::Not(a) => self.w(*a),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                let (wa, wb) = (self.w(*a), self.w(*b));
                assert_eq!(wa, wb, "bitwise op width mismatch: {wa} vs {wb}");
                wa
            }
            Expr::RedAnd(_) | Expr::RedOr(_) | Expr::RedXor(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                let (wa, wb) = (self.w(*a), self.w(*b));
                assert_eq!(wa, wb, "arithmetic width mismatch: {wa} vs {wb}");
                wa
            }
            Expr::Eq(a, b) | Expr::Ne(a, b) | Expr::Ult(a, b) | Expr::Ule(a, b) => {
                let (wa, wb) = (self.w(*a), self.w(*b));
                assert_eq!(wa, wb, "comparison width mismatch: {wa} vs {wb}");
                1
            }
            Expr::Shl(a, _) | Expr::Shr(a, _) => self.w(*a),
            Expr::Mux { cond, then_, else_ } => {
                assert_eq!(self.w(*cond), 1, "mux condition must be 1 bit");
                let (wt, we) = (self.w(*then_), self.w(*else_));
                assert_eq!(wt, we, "mux arm width mismatch: {wt} vs {we}");
                wt
            }
            Expr::Concat(parts) => {
                assert!(!parts.is_empty(), "empty concat");
                parts.iter().map(|p| self.w(*p)).sum()
            }
            Expr::Repeat(n, a) => {
                assert!(*n > 0, "zero-count repeat");
                n * self.w(*a)
            }
            Expr::Slice(a, hi, lo) => {
                let wa = self.w(*a);
                assert!(
                    hi >= lo && *hi < wa,
                    "bad slice [{hi}:{lo}] of width {wa}"
                );
                hi - lo + 1
            }
        }
    }

    /// Collects the net ids referenced (transitively) by `id`.
    pub fn support(&self, id: ExprId) -> Vec<NetId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        let mut stack = vec![id];
        let mut visited = FxHashSet::default();
        while let Some(x) = stack.pop() {
            if !visited.insert(x) {
                continue;
            }
            match self.node(x) {
                Expr::Const(_) => {}
                Expr::Net(n) => {
                    if seen.insert(*n) {
                        out.push(*n);
                    }
                }
                Expr::Not(a)
                | Expr::RedAnd(a)
                | Expr::RedOr(a)
                | Expr::RedXor(a)
                | Expr::Shl(a, _)
                | Expr::Shr(a, _)
                | Expr::Repeat(_, a)
                | Expr::Slice(a, _, _) => stack.push(*a),
                Expr::And(a, b)
                | Expr::Or(a, b)
                | Expr::Xor(a, b)
                | Expr::Add(a, b)
                | Expr::Sub(a, b)
                | Expr::Mul(a, b)
                | Expr::Eq(a, b)
                | Expr::Ne(a, b)
                | Expr::Ult(a, b)
                | Expr::Ule(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Expr::Mux { cond, then_, else_ } => {
                    stack.push(*cond);
                    stack.push(*then_);
                    stack.push(*else_);
                }
                Expr::Concat(parts) => stack.extend(parts.iter().copied()),
            }
        }
        out.sort();
        out
    }

    /// Evaluates `id` given a function that resolves net values.
    ///
    /// Used by the reference interpreter and by constant propagation; the
    /// cycle-accurate simulator in `veridic-sim` has its own compiled
    /// evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `nets` returns a value whose width differs from the net
    /// reference's declared width.
    pub fn eval(&self, id: ExprId, nets: &dyn Fn(NetId) -> Value) -> Value {
        let mut cache: FxHashMap<ExprId, Value> = FxHashMap::default();
        self.eval_cached(id, nets, &mut cache)
    }

    fn eval_cached(
        &self,
        id: ExprId,
        nets: &dyn Fn(NetId) -> Value,
        cache: &mut FxHashMap<ExprId, Value>,
    ) -> Value {
        if let Some(v) = cache.get(&id) {
            return v.clone();
        }
        let v = match self.node(id).clone() {
            Expr::Const(v) => v,
            Expr::Net(n) => {
                let v = nets(n);
                assert_eq!(
                    v.width(),
                    self.width(id),
                    "net {n:?} evaluated at wrong width"
                );
                v
            }
            Expr::Not(a) => self.eval_cached(a, nets, cache).not(),
            Expr::And(a, b) => self
                .eval_cached(a, nets, cache)
                .and(&self.eval_cached(b, nets, cache)),
            Expr::Or(a, b) => self
                .eval_cached(a, nets, cache)
                .or(&self.eval_cached(b, nets, cache)),
            Expr::Xor(a, b) => self
                .eval_cached(a, nets, cache)
                .xor(&self.eval_cached(b, nets, cache)),
            Expr::RedAnd(a) => Value::bit_value(self.eval_cached(a, nets, cache).and_reduce()),
            Expr::RedOr(a) => Value::bit_value(self.eval_cached(a, nets, cache).or_reduce()),
            Expr::RedXor(a) => Value::bit_value(self.eval_cached(a, nets, cache).xor_reduce()),
            Expr::Add(a, b) => self
                .eval_cached(a, nets, cache)
                .add(&self.eval_cached(b, nets, cache)),
            Expr::Sub(a, b) => self
                .eval_cached(a, nets, cache)
                .sub(&self.eval_cached(b, nets, cache)),
            Expr::Mul(a, b) => self
                .eval_cached(a, nets, cache)
                .mul(&self.eval_cached(b, nets, cache)),
            Expr::Eq(a, b) => Value::bit_value(
                self.eval_cached(a, nets, cache) == self.eval_cached(b, nets, cache),
            ),
            Expr::Ne(a, b) => Value::bit_value(
                self.eval_cached(a, nets, cache) != self.eval_cached(b, nets, cache),
            ),
            Expr::Ult(a, b) => Value::bit_value(
                self.eval_cached(a, nets, cache)
                    .ult(&self.eval_cached(b, nets, cache)),
            ),
            Expr::Ule(a, b) => {
                let va = self.eval_cached(a, nets, cache);
                let vb = self.eval_cached(b, nets, cache);
                Value::bit_value(!vb.ult(&va))
            }
            Expr::Shl(a, n) => self.eval_cached(a, nets, cache).shl(n),
            Expr::Shr(a, n) => self.eval_cached(a, nets, cache).shr(n),
            Expr::Mux { cond, then_, else_ } => {
                if self.eval_cached(cond, nets, cache).bit(0) {
                    self.eval_cached(then_, nets, cache)
                } else {
                    self.eval_cached(else_, nets, cache)
                }
            }
            Expr::Concat(parts) => {
                // parts are MSB-first; fold from the last (LSB) upward.
                let mut acc: Option<Value> = None;
                for p in parts.iter().rev() {
                    let v = self.eval_cached(*p, nets, cache);
                    acc = Some(match acc {
                        None => v,
                        Some(lo) => lo.concat(&v),
                    });
                }
                acc.expect("empty concat") // lint: allow
            }
            Expr::Repeat(n, a) => {
                let v = self.eval_cached(a, nets, cache);
                let mut acc = v.clone();
                for _ in 1..n {
                    acc = acc.concat(&v);
                }
                acc
            }
            Expr::Slice(a, hi, lo) => self.eval_cached(a, nets, cache).slice(hi, lo),
        };
        cache.insert(id, v.clone());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn konst(a: &mut ExprArena, w: u32, v: u64) -> ExprId {
        a.add(Expr::Const(Value::from_u64(w, v)))
    }

    #[test]
    fn hash_consing_dedups() {
        let mut a = ExprArena::new();
        let x = konst(&mut a, 8, 42);
        let y = konst(&mut a, 8, 42);
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn widths_are_computed() {
        let mut a = ExprArena::new();
        let x = konst(&mut a, 8, 3);
        let y = konst(&mut a, 8, 5);
        let s = a.add(Expr::Add(x, y));
        assert_eq!(a.width(s), 8);
        let r = a.add(Expr::RedXor(s));
        assert_eq!(a.width(r), 1);
        let c = a.add(Expr::Concat(vec![x, y, r]));
        assert_eq!(a.width(c), 17);
        let sl = a.add(Expr::Slice(c, 8, 1));
        assert_eq!(a.width(sl), 8);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_and_rejected() {
        let mut a = ExprArena::new();
        let x = konst(&mut a, 8, 3);
        let y = konst(&mut a, 4, 5);
        a.add(Expr::And(x, y));
    }

    #[test]
    #[should_panic(expected = "mux condition")]
    fn wide_mux_condition_rejected() {
        let mut a = ExprArena::new();
        let c = konst(&mut a, 2, 3);
        let x = konst(&mut a, 8, 3);
        a.add(Expr::Mux { cond: c, then_: x, else_: x });
    }

    #[test]
    fn eval_arithmetic_and_mux() {
        let mut a = ExprArena::new();
        let n = a.net(NetId(0), 8);
        let five = konst(&mut a, 8, 5);
        let sum = a.add(Expr::Add(n, five));
        let big = a.add(Expr::Ult(five, n));
        let m = a.add(Expr::Mux { cond: big, then_: sum, else_: five });
        let get = |_: NetId| Value::from_u64(8, 10);
        assert_eq!(a.eval(m, &get).to_u64(), 15);
        let get = |_: NetId| Value::from_u64(8, 2);
        assert_eq!(a.eval(m, &get).to_u64(), 5);
    }

    #[test]
    fn eval_concat_is_msb_first() {
        let mut a = ExprArena::new();
        let hi = konst(&mut a, 4, 0b1100);
        let lo = konst(&mut a, 4, 0b0011);
        let c = a.add(Expr::Concat(vec![hi, lo]));
        let v = a.eval(c, &|_| unreachable!());
        assert_eq!(v.to_u64(), 0b1100_0011);
    }

    #[test]
    fn support_collects_unique_nets() {
        let mut a = ExprArena::new();
        let n0 = a.net(NetId(0), 4);
        let n1 = a.net(NetId(1), 4);
        let x = a.add(Expr::Xor(n0, n1));
        let y = a.add(Expr::And(x, n0));
        assert_eq!(a.support(y), vec![NetId(0), NetId(1)]);
    }

    #[test]
    fn eval_reductions() {
        let mut a = ExprArena::new();
        let v = konst(&mut a, 3, 0b101);
        let rx = a.add(Expr::RedXor(v));
        let ra = a.add(Expr::RedAnd(v));
        let ro = a.add(Expr::RedOr(v));
        assert_eq!(a.eval(rx, &|_| unreachable!()).to_u64(), 0);
        assert_eq!(a.eval(ra, &|_| unreachable!()).to_u64(), 0);
        assert_eq!(a.eval(ro, &|_| unreachable!()).to_u64(), 1);
    }
}
