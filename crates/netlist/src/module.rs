//! Modules: the structural unit of the RTL IR.
//!
//! A [`Module`] owns its nets, registers, continuous assignments, submodule
//! instances and an [`ExprArena`]. The IR models a single synchronous clock
//! domain with an optional asynchronous reset, which matches the paper's
//! target design (one `CK`, one `RESET`, all state parity-protected).

use crate::expr::{Expr, ExprArena, ExprId, NetId};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Direction of a module port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by the module.
    Output,
}

/// A named wire of fixed width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    /// Name unique within the module.
    pub name: String,
    /// Bit width (>= 1).
    pub width: u32,
    /// Free-form annotations. The methodology layer uses these to mark
    /// integrity checkpoints (e.g. `parity.group`, `checkpoint.kind`).
    pub attrs: BTreeMap<String, String>,
}

/// A module port, referring to one of the module's nets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name (same as the net name).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Backing net.
    pub net: NetId,
}

/// A D-type register with asynchronous reset.
///
/// Semantics: on every clock edge `q <= next`; while `RESET` is asserted
/// `q = reset_value`. For formal analysis the initial state is
/// `reset_value` and the reset net is tied inactive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reg {
    /// The net holding the register output `q`.
    pub q: NetId,
    /// Next-state expression (width of `q`).
    pub next: ExprId,
    /// Value loaded by reset; also the formal initial state.
    pub reset_value: Value,
}

/// A connection of one instance port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Conn {
    /// An input port of the child, driven by a parent expression.
    In(ExprId),
    /// An output port of the child, driving a parent net.
    Out(NetId),
}

/// An instantiation of a child module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Name of the instantiated module (resolved through the `Design`).
    pub module: String,
    /// Instance name, unique within the parent.
    pub name: String,
    /// Port-name → connection map.
    pub conns: BTreeMap<String, Conn>,
}

/// A hardware module: nets, registers, assignments and child instances.
///
/// # Examples
///
/// ```
/// use veridic_netlist::{Module, PortDir, Expr};
///
/// let mut m = Module::new("leaf");
/// let a = m.add_port("a", PortDir::Input, 4);
/// let y = m.add_port("y", PortDir::Output, 1);
/// let ea = m.arena.net(a, 4);
/// let parity = m.arena.add(Expr::RedXor(ea));
/// m.assign(y, parity);
/// assert!(m.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name, unique within a `Design`.
    pub name: String,
    /// Expression arena for all expressions in this module.
    pub arena: ExprArena,
    /// All nets (indexed by `NetId`).
    pub nets: Vec<Net>,
    /// Ports, in declaration order.
    pub ports: Vec<Port>,
    /// Continuous assignments `net = expr`.
    pub assigns: Vec<(NetId, ExprId)>,
    /// Registers.
    pub regs: Vec<Reg>,
    /// Child instances.
    pub instances: Vec<Instance>,
    /// Module-level annotations.
    pub attrs: BTreeMap<String, String>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            arena: ExprArena::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            assigns: Vec::new(),
            regs: Vec::new(),
            instances: Vec::new(),
            attrs: BTreeMap::new(),
        }
    }

    /// Declares a new net.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or the name is already taken.
    pub fn add_net(&mut self, name: impl Into<String>, width: u32) -> NetId {
        let name = name.into();
        assert!(width > 0, "net {name} must have width >= 1");
        assert!(
            self.find_net(&name).is_none(),
            "duplicate net name {name} in module {}",
            self.name
        );
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name, width, attrs: BTreeMap::new() });
        id
    }

    /// Declares a net and exposes it as a port.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PortDir, width: u32) -> NetId {
        let name = name.into();
        let net = self.add_net(name.clone(), width);
        self.ports.push(Port { name, dir, net });
        net
    }

    /// Promotes an existing net to a port.
    ///
    /// # Panics
    ///
    /// Panics if the net is already a port.
    pub fn expose(&mut self, net: NetId, dir: PortDir) {
        assert!(
            self.ports.iter().all(|p| p.net != net),
            "net {net:?} is already a port"
        );
        let name = self.nets[net.0 as usize].name.clone();
        self.ports.push(Port { name, dir, net });
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Looks up a port by name.
    pub fn find_port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Returns the net record for an id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Returns a mutable net record (e.g. to add attributes).
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.0 as usize]
    }

    /// Width of a net.
    pub fn net_width(&self, id: NetId) -> u32 {
        self.nets[id.0 as usize].width
    }

    /// Adds a continuous assignment `net = expr`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn assign(&mut self, net: NetId, expr: ExprId) {
        assert_eq!(
            self.net_width(net),
            self.arena.width(expr),
            "assignment width mismatch on net {}",
            self.net(net).name
        );
        self.assigns.push((net, expr));
    }

    /// Adds a register driving `q` with next-state `next`.
    ///
    /// # Panics
    ///
    /// Panics if widths of `q`, `next` and `reset_value` differ.
    pub fn add_reg(&mut self, q: NetId, next: ExprId, reset_value: Value) {
        let w = self.net_width(q);
        assert_eq!(w, self.arena.width(next), "register next-state width mismatch");
        assert_eq!(w, reset_value.width(), "register reset value width mismatch");
        self.regs.push(Reg { q, next, reset_value });
    }

    /// Adds a child instance.
    pub fn add_instance(&mut self, inst: Instance) {
        assert!(
            self.instances.iter().all(|i| i.name != inst.name),
            "duplicate instance name {} in module {}",
            inst.name,
            self.name
        );
        self.instances.push(inst);
    }

    /// Iterates over input ports.
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Iterates over output ports.
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }

    /// True if the module instantiates no children (a *leaf module* in the
    /// paper's sense).
    pub fn is_leaf(&self) -> bool {
        self.instances.is_empty()
    }

    /// Returns the register driving `q`, if any.
    pub fn reg_for(&self, q: NetId) -> Option<&Reg> {
        self.regs.iter().find(|r| r.q == q)
    }

    /// Total number of state bits (sum of register widths).
    pub fn state_bits(&self) -> u32 {
        self.regs.iter().map(|r| self.net_width(r.q)).sum()
    }

    /// Convenience: a constant expression.
    pub fn lit(&mut self, width: u32, bits: u64) -> ExprId {
        self.arena.add(Expr::Const(Value::from_u64(width, bits)))
    }

    /// Convenience: a reference to `net`.
    pub fn sig(&mut self, net: NetId) -> ExprId {
        let w = self.net_width(net);
        self.arena.net(net, w)
    }

    /// Convenience: single-bit select `net[bit]`.
    pub fn sig_bit(&mut self, net: NetId, bit: u32) -> ExprId {
        let s = self.sig(net);
        self.arena.add(Expr::Slice(s, bit, bit))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} ({} ports, {} nets, {} regs, {} assigns, {} instances)",
            self.name, self.ports.len(), self.nets.len(), self.regs.len(),
            self.assigns.len(), self.instances.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_and_nets() {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 8);
        let y = m.add_port("y", PortDir::Output, 8);
        assert_eq!(m.find_net("a"), Some(a));
        assert_eq!(m.find_port("y").unwrap().net, y);
        assert_eq!(m.inputs().count(), 1);
        assert_eq!(m.outputs().count(), 1);
        assert!(m.is_leaf());
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_net_rejected() {
        let mut m = Module::new("m");
        m.add_net("x", 1);
        m.add_net("x", 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn assign_width_checked() {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 8);
        let y = m.add_port("y", PortDir::Output, 4);
        let ea = m.sig(a);
        m.assign(y, ea);
    }

    #[test]
    fn register_reset_width_checked() {
        let mut m = Module::new("m");
        let q = m.add_net("q", 4);
        let nxt = m.lit(4, 0);
        m.add_reg(q, nxt, Value::from_u64(4, 0b1000));
        assert_eq!(m.state_bits(), 4);
        assert!(m.reg_for(q).is_some());
    }

    #[test]
    fn attrs_are_settable() {
        let mut m = Module::new("m");
        let q = m.add_net("state", 4);
        m.net_mut(q)
            .attrs
            .insert("checkpoint.kind".into(), "fsm".into());
        assert_eq!(m.net(q).attrs.get("checkpoint.kind").unwrap(), "fsm");
    }
}
