//! # veridic-netlist
//!
//! Word-level synthesizable RTL intermediate representation: the common
//! substrate under the Verilog frontend, the PSL property compiler, the
//! Verifiable-RTL transform, the logic simulator and the formal engines.
//!
//! The IR models a single synchronous clock domain with asynchronous-reset
//! D registers, continuous assignments over word-level expressions, and
//! module hierarchy — exactly the "Verifiable RTL" shape the paper's
//! methodology requires of leaf modules.
//!
//! ## Quick tour
//!
//! ```
//! use veridic_netlist::{Module, PortDir, Expr, Value};
//!
//! // A 4-bit odd-parity checker: he = ~(^data)
//! let mut m = Module::new("parity_check");
//! let data = m.add_port("data", PortDir::Input, 4);
//! let he = m.add_port("he", PortDir::Output, 1);
//! let d = m.sig(data);
//! let par = m.arena.add(Expr::RedXor(d));
//! let bad = m.arena.add(Expr::Not(par));
//! m.assign(he, bad);
//! m.validate()?;
//!
//! // Bit-blast to an AIG for the formal engines:
//! let lowered = m.to_aig()?;
//! assert_eq!(lowered.aig.num_inputs(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod expr;
mod lower;
mod module;
mod validate;
mod value;

pub use design::{Design, DesignError};
pub use expr::{Expr, ExprArena, ExprId, NetId};
pub use lower::LoweredAig;
pub use module::{Conn, Instance, Module, Net, Port, PortDir, Reg};
pub use validate::{Driver, ValidateError, ValidateReport, ValidateWarning};
pub use value::Value;

/// Re-export of the AIG crate for downstream convenience.
pub use veridic_aig as aig;
