//! Structural validation and combinational scheduling.
//!
//! [`Module::validate`] checks the single-driver rule and the absence of
//! combinational cycles; [`Module::comb_schedule`] returns the topological
//! evaluation order used by the simulator and the bit-blaster.

use crate::expr::NetId;
use crate::module::{Conn, Module};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Structural rule violations found by [`Module::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A net has more than one driver.
    MultipleDrivers {
        /// The multiply-driven net's name.
        net: String,
    },
    /// A non-input net is read but never driven.
    Undriven {
        /// The floating net's name.
        net: String,
    },
    /// An input port is driven inside the module.
    DrivenInput {
        /// The port name.
        net: String,
    },
    /// Combinational assignments form a cycle.
    CombinationalCycle {
        /// Names of the nets on the cycle.
        nets: Vec<String>,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MultipleDrivers { net } => write!(f, "net {net} has multiple drivers"),
            ValidateError::Undriven { net } => write!(f, "net {net} is read but never driven"),
            ValidateError::DrivenInput { net } => write!(f, "input port {net} is driven internally"),
            ValidateError::CombinationalCycle { nets } => {
                write!(f, "combinational cycle through: {}", nets.join(" -> "))
            }
        }
    }
}

impl Error for ValidateError {}

/// Non-fatal findings from [`Module::validate_all`]: worth reporting to
/// the user, but never grounds for rejecting the module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateWarning {
    /// A driven, non-output net that nothing reads — dead logic a
    /// frontend probably meant to hook up (or prune).
    UnreadNet {
        /// The unread net's name.
        net: String,
    },
}

impl fmt::Display for ValidateWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateWarning::UnreadNet { net } => {
                write!(f, "net {net} is driven but never read")
            }
        }
    }
}

/// Complete diagnostics from one [`Module::validate_all`] pass: every
/// structural violation plus the non-fatal warnings, so frontends can
/// report everything wrong with a module at once instead of fixing one
/// error per compile cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidateReport {
    /// All structural rule violations, in discovery order (drivers,
    /// then reads, then cycles).
    pub errors: Vec<ValidateError>,
    /// Non-fatal findings; a module with only warnings is still valid.
    pub warnings: Vec<ValidateWarning>,
}

impl ValidateReport {
    /// True when no *errors* were found (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Renders every error and warning, one per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.errors {
            s.push_str("error: ");
            s.push_str(&e.to_string());
            s.push('\n');
        }
        for w in &self.warnings {
            s.push_str("warning: ");
            s.push_str(&w.to_string());
            s.push('\n');
        }
        s
    }
}

/// How a net is driven, as discovered by validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// Module input port.
    Input,
    /// Continuous assignment (index into `assigns`).
    Assign(usize),
    /// Register output (index into `regs`).
    Reg(usize),
    /// Child instance output (index into `instances`).
    InstanceOut(usize),
}

impl Module {
    /// Computes the driver of every net.
    ///
    /// # Errors
    ///
    /// Returns an error if a net has multiple drivers or an input port is
    /// internally driven.
    pub fn drivers(&self) -> Result<BTreeMap<NetId, Driver>, ValidateError> {
        let mut map: BTreeMap<NetId, Driver> = BTreeMap::new();
        let set = |net: NetId, d: Driver, m: &mut BTreeMap<NetId, Driver>| {
            if m.insert(net, d).is_some() {
                return Err(ValidateError::MultipleDrivers { net: self.net(net).name.clone() });
            }
            Ok(())
        };
        for p in self.inputs() {
            set(p.net, Driver::Input, &mut map)?;
        }
        for (i, (net, _)) in self.assigns.iter().enumerate() {
            set(*net, Driver::Assign(i), &mut map)?;
        }
        for (i, r) in self.regs.iter().enumerate() {
            set(r.q, Driver::Reg(i), &mut map)?;
        }
        for (i, inst) in self.instances.iter().enumerate() {
            for conn in inst.conns.values() {
                if let Conn::Out(n) = conn {
                    set(*n, Driver::InstanceOut(i), &mut map)?;
                }
            }
        }
        for p in self.inputs() {
            if !matches!(map.get(&p.net), Some(Driver::Input)) {
                return Err(ValidateError::DrivenInput { net: p.name.clone() });
            }
        }
        Ok(map)
    }

    /// Validates structure: single drivers, no floating reads, no
    /// combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let drivers = self.drivers()?;
        // Every net that is *read* must be driven. Reads come from assign
        // rhs, reg next-state, instance input expressions, output ports.
        let mut read: BTreeSet<NetId> = BTreeSet::new();
        for (_, e) in &self.assigns {
            read.extend(self.arena.support(*e));
        }
        for r in &self.regs {
            read.extend(self.arena.support(r.next));
        }
        for inst in &self.instances {
            for conn in inst.conns.values() {
                if let Conn::In(e) = conn {
                    read.extend(self.arena.support(*e));
                }
            }
        }
        for p in self.outputs() {
            read.insert(p.net);
        }
        for n in read {
            if !drivers.contains_key(&n) {
                return Err(ValidateError::Undriven { net: self.net(n).name.clone() });
            }
        }
        self.comb_schedule().map(|_| ())
    }

    /// Validates structure like [`Module::validate`], but collects
    /// **every** violation instead of stopping at the first, and adds
    /// non-fatal warnings ([`ValidateWarning::UnreadNet`]) — one pass,
    /// complete diagnostics.
    ///
    /// Unlike [`Module::drivers`], a second driver on an input port is
    /// classified as the more precise [`ValidateError::DrivenInput`]
    /// here rather than `MultipleDrivers`.
    pub fn validate_all(&self) -> ValidateReport {
        let mut report = ValidateReport::default();
        // Drivers, collecting every conflict while keeping the first
        // driver of each net so downstream checks still run.
        let mut map: BTreeMap<NetId, Driver> = BTreeMap::new();
        let mut set = |net: NetId, d: Driver, report: &mut ValidateReport| {
            if let Some(prev) = map.get(&net) {
                let name = self.net(net).name.clone();
                report.errors.push(if *prev == Driver::Input {
                    ValidateError::DrivenInput { net: name }
                } else {
                    ValidateError::MultipleDrivers { net: name }
                });
            } else {
                map.insert(net, d);
            }
        };
        for p in self.inputs() {
            set(p.net, Driver::Input, &mut report);
        }
        for (i, (net, _)) in self.assigns.iter().enumerate() {
            set(*net, Driver::Assign(i), &mut report);
        }
        for (i, r) in self.regs.iter().enumerate() {
            set(r.q, Driver::Reg(i), &mut report);
        }
        for (i, inst) in self.instances.iter().enumerate() {
            for conn in inst.conns.values() {
                if let Conn::Out(n) = conn {
                    set(*n, Driver::InstanceOut(i), &mut report);
                }
            }
        }
        // Reads: every read net must be driven; every driven non-output
        // net should be read somewhere.
        let mut read: BTreeSet<NetId> = BTreeSet::new();
        for (_, e) in &self.assigns {
            read.extend(self.arena.support(*e));
        }
        for r in &self.regs {
            read.extend(self.arena.support(r.next));
        }
        for inst in &self.instances {
            for conn in inst.conns.values() {
                if let Conn::In(e) = conn {
                    read.extend(self.arena.support(*e));
                }
            }
        }
        for p in self.outputs() {
            read.insert(p.net);
        }
        for n in &read {
            if !map.contains_key(n) {
                report
                    .errors
                    .push(ValidateError::Undriven { net: self.net(*n).name.clone() });
            }
        }
        for (n, d) in &map {
            // Input ports are stimulus, not logic — an unused input is
            // an interface question, not dead internal logic.
            if *d != Driver::Input && !read.contains(n) {
                report
                    .warnings
                    .push(ValidateWarning::UnreadNet { net: self.net(*n).name.clone() });
            }
        }
        if let Err(e) = self.comb_schedule() {
            report.errors.push(e);
        }
        report
    }

    /// Enumerates **every** combinational loop among the continuous
    /// assignments: the strongly-connected components of the assign
    /// dependency graph with more than one member, plus self-dependent
    /// assignments. Registers and inputs break loops, exactly as in
    /// [`Module::comb_schedule`] — but unlike the schedule, which
    /// rejects the module at the first cycle it meets, this never
    /// fails, so lint tooling can report all loops of a module that
    /// deliberately skips [`Module::validate`]. Each loop is the
    /// sorted, deduplicated list of driven-net names on it; loops are
    /// ordered by their first name.
    pub fn comb_loops(&self) -> Vec<Vec<String>> {
        let mut driver_of: BTreeMap<NetId, usize> = BTreeMap::new();
        for (i, (net, _)) in self.assigns.iter().enumerate() {
            driver_of.insert(*net, i);
        }
        let succs: Vec<Vec<u32>> = self
            .assigns
            .iter()
            .map(|(_, e)| {
                let mut s: Vec<u32> = self
                    .arena
                    .support(*e)
                    .into_iter()
                    .filter_map(|n| driver_of.get(&n).map(|&j| j as u32))
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let sccs = veridic_aig::structure::tarjan_sccs(self.assigns.len(), |v| &succs[v]);
        let mut loops: Vec<Vec<String>> = sccs
            .into_iter()
            .filter(|scc| scc.len() > 1 || succs[scc[0] as usize].contains(&scc[0]))
            .map(|scc| {
                let mut names: Vec<String> = scc
                    .iter()
                    .map(|&i| self.net(self.assigns[i as usize].0).name.clone())
                    .collect();
                names.sort();
                names.dedup();
                names
            })
            .collect();
        loops.sort();
        loops
    }

    /// Returns the indices of `assigns` in dependency order: an assignment
    /// appears after every assignment whose target it reads. Register
    /// outputs and inputs are sources and impose no ordering.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError::CombinationalCycle`] if the assignments are
    /// cyclic.
    pub fn comb_schedule(&self) -> Result<Vec<usize>, ValidateError> {
        // net -> assign index driving it
        let mut driver_of: BTreeMap<NetId, usize> = BTreeMap::new();
        for (i, (net, _)) in self.assigns.iter().enumerate() {
            driver_of.insert(*net, i);
        }
        // DFS with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.assigns.len()];
        let mut order = Vec::with_capacity(self.assigns.len());
        // Iterative DFS to avoid stack overflow on deep chains.
        for start in 0..self.assigns.len() {
            if colour[start] != Colour::White {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(start, false)];
            while let Some((i, expanded)) = stack.pop() {
                if expanded {
                    colour[i] = Colour::Black;
                    order.push(i);
                    continue;
                }
                if colour[i] == Colour::Black {
                    continue;
                }
                if colour[i] == Colour::Grey {
                    continue;
                }
                colour[i] = Colour::Grey;
                stack.push((i, true));
                for dep_net in self.arena.support(self.assigns[i].1) {
                    if let Some(&j) = driver_of.get(&dep_net) {
                        match colour[j] {
                            Colour::White => stack.push((j, false)),
                            Colour::Grey => {
                                let nets = vec![
                                    self.net(self.assigns[j].0).name.clone(),
                                    self.net(self.assigns[i].0).name.clone(),
                                ];
                                return Err(ValidateError::CombinationalCycle { nets });
                            }
                            Colour::Black => {}
                        }
                    }
                }
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::module::PortDir;
    use crate::value::Value;

    #[test]
    fn clean_module_validates() {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 4);
        let y = m.add_port("y", PortDir::Output, 4);
        let w = m.add_net("w", 4);
        let ea = m.sig(a);
        let na = m.arena.add(Expr::Not(ea));
        m.assign(w, na);
        let ew = m.sig(w);
        m.assign(y, ew);
        assert!(m.validate().is_ok());
        let sched = m.comb_schedule().unwrap();
        // w's assign (index 0) must come before y's (index 1).
        assert_eq!(sched, vec![0, 1]);
    }

    #[test]
    fn double_drive_detected() {
        let mut m = Module::new("m");
        let y = m.add_port("y", PortDir::Output, 1);
        let t = m.lit(1, 0);
        let u = m.lit(1, 1);
        m.assign(y, t);
        m.assign(y, u);
        assert!(matches!(m.validate(), Err(ValidateError::MultipleDrivers { .. })));
    }

    #[test]
    fn undriven_read_detected() {
        let mut m = Module::new("m");
        let y = m.add_port("y", PortDir::Output, 1);
        let ghost = m.add_net("ghost", 1);
        let eg = m.sig(ghost);
        m.assign(y, eg);
        match m.validate() {
            Err(ValidateError::Undriven { net }) => assert_eq!(net, "ghost"),
            other => panic!("expected Undriven, got {other:?}"),
        }
    }

    #[test]
    fn comb_cycle_detected() {
        let mut m = Module::new("m");
        let a = m.add_net("a", 1);
        let b = m.add_net("b", 1);
        let ea = m.sig(a);
        let eb = m.sig(b);
        let na = m.arena.add(Expr::Not(ea));
        let nb = m.arena.add(Expr::Not(eb));
        m.assign(b, na);
        m.assign(a, nb);
        assert!(matches!(
            m.comb_schedule(),
            Err(ValidateError::CombinationalCycle { .. })
        ));
    }

    /// The lint walk: every loop is enumerated (the schedule stops at
    /// one), self-loops count, registers still break cycles, and a
    /// clean module reports nothing.
    #[test]
    fn comb_loops_enumerates_every_cycle() {
        // Two disjoint loops plus a self-loop plus acyclic logic.
        let mut m = Module::new("m");
        let mk = |m: &mut Module, name: &str| m.add_net(name, 1);
        let a = mk(&mut m, "a");
        let b = mk(&mut m, "b");
        let c = mk(&mut m, "c");
        let d = mk(&mut m, "d");
        let s = mk(&mut m, "s");
        let (ea, eb, ec, ed, es) = (m.sig(a), m.sig(b), m.sig(c), m.sig(d), m.sig(s));
        let na = m.arena.add(Expr::Not(ea));
        let nb = m.arena.add(Expr::Not(eb));
        m.assign(b, na); // a -> b
        m.assign(a, nb); // b -> a   (loop 1: {a, b})
        let nc = m.arena.add(Expr::Not(ec));
        let nd = m.arena.add(Expr::Not(ed));
        m.assign(d, nc); // c -> d
        m.assign(c, nd); // d -> c   (loop 2: {c, d})
        let ns = m.arena.add(Expr::Not(es));
        m.assign(s, ns); // self-loop {s}
        let y = m.add_port("y", PortDir::Output, 1);
        let ea2 = m.sig(a);
        m.assign(y, ea2); // acyclic reader, not on any loop
        let loops = m.comb_loops();
        assert_eq!(
            loops,
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()],
                vec!["s".to_string()],
            ]
        );
        // The one-shot schedule still rejects the same module.
        assert!(matches!(m.comb_schedule(), Err(ValidateError::CombinationalCycle { .. })));

        // A registered feedback path is sequential, not a comb loop.
        let mut m2 = Module::new("m2");
        let q = m2.add_net("q", 1);
        let eq_ = m2.sig(q);
        let nq = m2.arena.add(Expr::Not(eq_));
        m2.add_reg(q, nq, Value::from_u64(1, 0));
        assert!(m2.comb_loops().is_empty());
    }

    #[test]
    fn register_breaks_cycle() {
        // q -> next(q) is fine: the register is a sequential element.
        let mut m = Module::new("m");
        let q = m.add_net("q", 4);
        let one = m.lit(4, 1);
        let eq_ = m.sig(q);
        let nxt = m.arena.add(Expr::Add(eq_, one));
        m.add_reg(q, nxt, Value::from_u64(4, 0));
        let y = m.add_port("y", PortDir::Output, 4);
        let eq2 = m.sig(q);
        m.assign(y, eq2);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn driven_input_detected() {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 1);
        let t = m.lit(1, 0);
        m.assign(a, t);
        assert!(matches!(m.validate(), Err(ValidateError::MultipleDrivers { .. })));
    }

    #[test]
    fn validate_all_collects_every_violation() {
        // One module, three distinct problems: a double-driven output,
        // an internally-driven input, and an undriven read — plus an
        // unread net for the warning channel. `validate()` stops at the
        // first; `validate_all()` must report them all.
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 1);
        let y = m.add_port("y", PortDir::Output, 1);
        let t = m.lit(1, 0);
        let u = m.lit(1, 1);
        m.assign(y, t);
        m.assign(y, u); // MultipleDrivers(y)
        let v = m.lit(1, 0);
        m.assign(a, v); // DrivenInput(a)
        let ghost = m.add_net("ghost", 1);
        let unread = m.add_net("unread", 1);
        let eg = m.sig(ghost);
        m.assign(unread, eg); // Undriven(ghost) + UnreadNet(unread)
        let report = m.validate_all();
        assert!(!report.is_clean());
        assert!(report
            .errors
            .contains(&ValidateError::MultipleDrivers { net: "y".into() }));
        assert!(report.errors.contains(&ValidateError::DrivenInput { net: "a".into() }));
        assert!(report.errors.contains(&ValidateError::Undriven { net: "ghost".into() }));
        assert_eq!(report.errors.len(), 3, "{:?}", report.errors);
        assert_eq!(
            report.warnings,
            vec![ValidateWarning::UnreadNet { net: "unread".into() }]
        );
        // validate() still reports only the first failure.
        assert!(matches!(m.validate(), Err(ValidateError::MultipleDrivers { .. })));
        // The rendering carries both severities.
        let text = report.render();
        assert!(text.contains("error: net y has multiple drivers"));
        assert!(text.contains("warning: net unread is driven but never read"));
    }

    #[test]
    fn validate_all_warnings_are_non_fatal() {
        // A module whose only finding is an unread register: clean.
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 1);
        let y = m.add_port("y", PortDir::Output, 1);
        let ea = m.sig(a);
        m.assign(y, ea);
        let q = m.add_net("q", 1);
        let ea2 = m.sig(a);
        m.add_reg(q, ea2, Value::from_u64(1, 0));
        let report = m.validate_all();
        assert!(report.is_clean());
        assert_eq!(report.warnings, vec![ValidateWarning::UnreadNet { net: "q".into() }]);
        assert!(m.validate().is_ok(), "warnings must not fail validate()");
    }

    #[test]
    fn validate_all_clean_module_is_empty() {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 4);
        let y = m.add_port("y", PortDir::Output, 4);
        let ea = m.sig(a);
        m.assign(y, ea);
        let report = m.validate_all();
        assert_eq!(report, ValidateReport::default());
        assert!(report.is_clean());
    }

    #[test]
    fn validate_all_reports_cycles_alongside_other_errors() {
        let mut m = Module::new("m");
        let a = m.add_net("a", 1);
        let b = m.add_net("b", 1);
        let ea = m.sig(a);
        let eb = m.sig(b);
        let na = m.arena.add(Expr::Not(ea));
        let nb = m.arena.add(Expr::Not(eb));
        m.assign(b, na);
        m.assign(a, nb);
        let report = m.validate_all();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidateError::CombinationalCycle { .. })));
    }

    #[test]
    fn instance_output_is_a_driver() {
        use crate::module::Instance;
        use std::collections::BTreeMap;
        let mut m = Module::new("m");
        let y = m.add_port("y", PortDir::Output, 1);
        let mut conns = BTreeMap::new();
        conns.insert("o".to_string(), Conn::Out(y));
        m.add_instance(Instance { module: "sub".into(), name: "u".into(), conns });
        let drivers = m.drivers().unwrap();
        assert_eq!(drivers.get(&y), Some(&Driver::InstanceOut(0)));
    }
}
