//! Bit-blasting: flat word-level modules → And-Inverter Graphs.
//!
//! [`Module::to_aig`] lowers an instance-free module into a
//! [`veridic_aig::Aig`]: each net becomes a vector of literals, each
//! register a row of latches initialised to its reset value. Arithmetic is
//! expanded structurally (ripple-carry adders, shift-add multipliers,
//! borrow-chain comparators).

use crate::expr::{Expr, ExprId, NetId};
use crate::module::Module;
use crate::validate::ValidateError;
use veridic_aig::hash::FxHashMap;
use veridic_aig::{Aig, LatchId, Lit, Var};

/// Result of lowering a module to an AIG.
#[derive(Debug)]
pub struct LoweredAig {
    /// The graph.
    pub aig: Aig,
    /// Literal vector (LSB-first) for every net.
    pub net_bits: FxHashMap<NetId, Vec<Lit>>,
    /// AIG input vars for every input-port bit, `(net, bit) -> var`.
    pub input_vars: FxHashMap<(NetId, u32), Var>,
    /// Latch ids for every register bit, `(net, bit) -> latch`.
    pub latch_ids: FxHashMap<(NetId, u32), LatchId>,
}

impl LoweredAig {
    /// The literal of one bit of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net was not lowered (e.g. an unread, undriven net).
    pub fn bit(&self, net: NetId, bit: u32) -> Lit {
        self.net_bits[&net][bit as usize]
    }

    /// All bits of a net, LSB-first.
    pub fn bits(&self, net: NetId) -> &[Lit] {
        &self.net_bits[&net]
    }
}

impl Module {
    /// Bit-blasts this (instance-free) module into an AIG.
    ///
    /// Input ports become AIG primary inputs; registers become latches with
    /// their reset value as initial state (formal semantics: time zero is
    /// the freshly reset machine). Output ports are registered as AIG
    /// outputs named `port[bit]`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ValidateError`] if the module has multiple
    /// drivers, floating reads or combinational cycles.
    ///
    /// # Panics
    ///
    /// Panics if the module still contains instances — flatten first.
    pub fn to_aig(&self) -> Result<LoweredAig, ValidateError> {
        assert!(
            self.is_leaf(),
            "to_aig requires a flattened module; {} has instances",
            self.name
        );
        let drivers = self.drivers()?;
        let schedule = self.comb_schedule()?;
        let mut aig = Aig::new();
        let mut net_bits: FxHashMap<NetId, Vec<Lit>> = FxHashMap::default();
        let mut input_vars = FxHashMap::default();
        let mut latch_ids = FxHashMap::default();

        // Inputs first (stable order: port declaration order).
        for p in self.inputs() {
            let w = self.net_width(p.net);
            let mut bits = Vec::with_capacity(w as usize);
            for b in 0..w {
                let lit = aig.input(format!("{}[{b}]", p.name));
                input_vars.insert((p.net, b), lit.var());
                bits.push(lit);
            }
            net_bits.insert(p.net, bits);
        }
        // Latches next.
        for r in &self.regs {
            let w = self.net_width(r.q);
            let name = &self.net(r.q).name;
            let mut bits = Vec::with_capacity(w as usize);
            for b in 0..w {
                let (id, lit) = aig.latch(format!("{name}[{b}]"), r.reset_value.bit(b));
                latch_ids.insert((r.q, b), id);
                bits.push(lit);
            }
            net_bits.insert(r.q, bits);
        }
        // Combinational assigns in dependency order.
        let mut expr_cache: FxHashMap<ExprId, Vec<Lit>> = FxHashMap::default();
        for i in schedule {
            let (net, expr) = self.assigns[i];
            let bits = self.lower_expr(expr, &mut aig, &net_bits, &mut expr_cache);
            net_bits.insert(net, bits);
        }
        // Nets that are never driven and never read may be absent; that is
        // fine. But regs' next-state exprs may reference nets we already
        // have. Wire the latches now.
        for r in &self.regs {
            let next_bits = self.lower_expr(r.next, &mut aig, &net_bits, &mut expr_cache);
            for (b, lit) in next_bits.iter().enumerate() {
                aig.set_next(latch_ids[&(r.q, b as u32)], *lit);
            }
        }
        // Outputs.
        for p in self.outputs() {
            let bits = net_bits
                .get(&p.net)
                .unwrap_or_else(|| panic!("output {} has no driver", p.name));
            for (b, lit) in bits.iter().enumerate() {
                aig.add_output(format!("{}[{b}]", p.name), *lit);
            }
        }
        let _ = drivers;
        Ok(LoweredAig { aig, net_bits, input_vars, latch_ids })
    }

    fn lower_expr(
        &self,
        id: ExprId,
        aig: &mut Aig,
        net_bits: &FxHashMap<NetId, Vec<Lit>>,
        cache: &mut FxHashMap<ExprId, Vec<Lit>>,
    ) -> Vec<Lit> {
        if let Some(bits) = cache.get(&id) {
            return bits.clone();
        }
        let bits: Vec<Lit> = match self.arena.node(id).clone() {
            Expr::Const(v) => (0..v.width())
                .map(|b| if v.bit(b) { Lit::TRUE } else { Lit::FALSE })
                .collect(),
            Expr::Net(n) => net_bits
                .get(&n)
                .unwrap_or_else(|| panic!("net {} lowered before its driver", self.net(n).name))
                .clone(),
            Expr::Not(a) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                a.into_iter().map(|l| !l).collect()
            }
            Expr::And(a, b) => self.lower_bitwise(a, b, aig, net_bits, cache, Aig::and),
            Expr::Or(a, b) => self.lower_bitwise(a, b, aig, net_bits, cache, Aig::or),
            Expr::Xor(a, b) => self.lower_bitwise(a, b, aig, net_bits, cache, Aig::xor),
            Expr::RedAnd(a) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                vec![aig.and_many(a)]
            }
            Expr::RedOr(a) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                vec![aig.or_many(a)]
            }
            Expr::RedXor(a) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let mut acc = Lit::FALSE;
                for l in a {
                    acc = aig.xor(acc, l);
                }
                vec![acc]
            }
            Expr::Add(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b = self.lower_expr(b, aig, net_bits, cache);
                ripple_add(aig, &a, &b, Lit::FALSE)
            }
            Expr::Sub(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b: Vec<Lit> = self
                    .lower_expr(b, aig, net_bits, cache)
                    .into_iter()
                    .map(|l| !l)
                    .collect();
                ripple_add(aig, &a, &b, Lit::TRUE)
            }
            Expr::Mul(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b = self.lower_expr(b, aig, net_bits, cache);
                let w = a.len();
                let mut acc = vec![Lit::FALSE; w];
                for (i, bi) in b.iter().enumerate() {
                    // acc += (a << i) & {w{b[i]}}
                    let shifted: Vec<Lit> = (0..w)
                        .map(|k| if k >= i { a[k - i] } else { Lit::FALSE })
                        .collect();
                    let gated: Vec<Lit> = shifted.iter().map(|l| aig.and(*l, *bi)).collect();
                    acc = ripple_add(aig, &acc, &gated, Lit::FALSE);
                }
                acc
            }
            Expr::Eq(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b = self.lower_expr(b, aig, net_bits, cache);
                let eqs: Vec<Lit> = a.iter().zip(&b).map(|(x, y)| aig.xnor(*x, *y)).collect();
                vec![aig.and_many(eqs)]
            }
            Expr::Ne(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b = self.lower_expr(b, aig, net_bits, cache);
                let eqs: Vec<Lit> = a.iter().zip(&b).map(|(x, y)| aig.xor(*x, *y)).collect();
                vec![aig.or_many(eqs)]
            }
            Expr::Ult(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b = self.lower_expr(b, aig, net_bits, cache);
                vec![ult(aig, &a, &b)]
            }
            Expr::Ule(a, b) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let b = self.lower_expr(b, aig, net_bits, cache);
                let gt = ult(aig, &b, &a);
                vec![!gt]
            }
            Expr::Shl(a, n) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let w = a.len();
                (0..w)
                    .map(|k| if (k as u32) >= n { a[k - n as usize] } else { Lit::FALSE })
                    .collect()
            }
            Expr::Shr(a, n) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let w = a.len();
                (0..w)
                    .map(|k| {
                        let src = k + n as usize;
                        if src < w {
                            a[src]
                        } else {
                            Lit::FALSE
                        }
                    })
                    .collect()
            }
            Expr::Mux { cond, then_, else_ } => {
                let c = self.lower_expr(cond, aig, net_bits, cache)[0];
                let t = self.lower_expr(then_, aig, net_bits, cache);
                let e = self.lower_expr(else_, aig, net_bits, cache);
                t.iter().zip(&e).map(|(x, y)| aig.mux(c, *x, *y)).collect()
            }
            Expr::Concat(parts) => {
                // MSB-first in the IR; LSB-first in bit vectors.
                let mut bits = Vec::new();
                for p in parts.iter().rev() {
                    bits.extend(self.lower_expr(*p, aig, net_bits, cache));
                }
                bits
            }
            Expr::Repeat(n, a) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                let mut bits = Vec::with_capacity(a.len() * n as usize);
                for _ in 0..n {
                    bits.extend(a.iter().copied());
                }
                bits
            }
            Expr::Slice(a, hi, lo) => {
                let a = self.lower_expr(a, aig, net_bits, cache);
                a[lo as usize..=hi as usize].to_vec()
            }
        };
        debug_assert_eq!(bits.len() as u32, self.arena.width(id), "lowered width mismatch");
        cache.insert(id, bits.clone());
        bits
    }

    fn lower_bitwise(
        &self,
        a: ExprId,
        b: ExprId,
        aig: &mut Aig,
        net_bits: &FxHashMap<NetId, Vec<Lit>>,
        cache: &mut FxHashMap<ExprId, Vec<Lit>>,
        op: fn(&mut Aig, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        let a = self.lower_expr(a, aig, net_bits, cache);
        let b = self.lower_expr(b, aig, net_bits, cache);
        a.iter().zip(&b).map(|(x, y)| op(aig, *x, *y)).collect()
    }
}

/// Ripple-carry addition; returns `a + b + cin` truncated to `a.len()`.
fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> Vec<Lit> {
    let mut carry = cin;
    let mut out = Vec::with_capacity(a.len());
    for (x, y) in a.iter().zip(b) {
        let xy = aig.xor(*x, *y);
        let sum = aig.xor(xy, carry);
        // carry' = (x & y) | (carry & (x ^ y))
        let c1 = aig.and(*x, *y);
        let c2 = aig.and(carry, xy);
        carry = aig.or(c1, c2);
        out.push(sum);
    }
    out
}

/// Unsigned a < b via borrow chain.
fn ult(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    // borrow = 1 iff a < b; process LSB to MSB:
    // borrow' = (!a & b) | ((!a | b) & borrow)
    let mut borrow = Lit::FALSE;
    for (x, y) in a.iter().zip(b) {
        let nb1 = aig.and(!*x, *y);
        let t = aig.or(!*x, *y);
        let nb2 = aig.and(t, borrow);
        borrow = aig.or(nb1, nb2);
    }
    borrow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::PortDir;
    use crate::value::Value;

    /// Exhaustively checks a 2-input combinational module against an oracle.
    fn check_comb(m: &Module, wa: u32, wb: u32, oracle: impl Fn(u64, u64) -> u64) {
        let lowered = m.to_aig().unwrap();
        let a_net = m.find_port("a").unwrap().net;
        let b_net = m.find_port("b").unwrap().net;
        let y_net = m.find_port("y").unwrap().net;
        for av in 0..(1u64 << wa) {
            for bv in 0..(1u64 << wb) {
                let leaf = |v: Var| {
                    for bit in 0..wa {
                        if lowered.input_vars.get(&(a_net, bit)) == Some(&v) {
                            return (av >> bit) & 1 == 1;
                        }
                    }
                    for bit in 0..wb {
                        if lowered.input_vars.get(&(b_net, bit)) == Some(&v) {
                            return (bv >> bit) & 1 == 1;
                        }
                    }
                    panic!("unknown input var");
                };
                let mut got = 0u64;
                for (bit, lit) in lowered.bits(y_net).iter().enumerate() {
                    if lowered.aig.eval_comb(*lit, &leaf) {
                        got |= 1 << bit;
                    }
                }
                assert_eq!(got, oracle(av, bv), "mismatch at a={av} b={bv}");
            }
        }
    }

    fn comb_module(wy: u32, f: impl Fn(&mut Module, ExprId, ExprId) -> ExprId) -> Module {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 4);
        let b = m.add_port("b", PortDir::Input, 4);
        let y = m.add_port("y", PortDir::Output, wy);
        let ea = m.sig(a);
        let eb = m.sig(b);
        let e = f(&mut m, ea, eb);
        m.assign(y, e);
        m
    }

    #[test]
    fn add_matches_oracle() {
        let m = comb_module(4, |m, a, b| m.arena.add(Expr::Add(a, b)));
        check_comb(&m, 4, 4, |a, b| (a + b) & 0xF);
    }

    #[test]
    fn sub_matches_oracle() {
        let m = comb_module(4, |m, a, b| m.arena.add(Expr::Sub(a, b)));
        check_comb(&m, 4, 4, |a, b| a.wrapping_sub(b) & 0xF);
    }

    #[test]
    fn mul_matches_oracle() {
        let m = comb_module(4, |m, a, b| m.arena.add(Expr::Mul(a, b)));
        check_comb(&m, 4, 4, |a, b| (a * b) & 0xF);
    }

    #[test]
    fn comparisons_match_oracle() {
        let m = comb_module(1, |m, a, b| m.arena.add(Expr::Ult(a, b)));
        check_comb(&m, 4, 4, |a, b| (a < b) as u64);
        let m = comb_module(1, |m, a, b| m.arena.add(Expr::Ule(a, b)));
        check_comb(&m, 4, 4, |a, b| (a <= b) as u64);
        let m = comb_module(1, |m, a, b| m.arena.add(Expr::Eq(a, b)));
        check_comb(&m, 4, 4, |a, b| (a == b) as u64);
        let m = comb_module(1, |m, a, b| m.arena.add(Expr::Ne(a, b)));
        check_comb(&m, 4, 4, |a, b| (a != b) as u64);
    }

    #[test]
    fn parity_matches_oracle() {
        let m = comb_module(1, |m, a, b| {
            let x = m.arena.add(Expr::Xor(a, b));
            m.arena.add(Expr::RedXor(x))
        });
        check_comb(&m, 4, 4, |a, b| ((a ^ b).count_ones() % 2) as u64);
    }

    #[test]
    fn shifts_and_slices() {
        let m = comb_module(4, |m, a, _| m.arena.add(Expr::Shl(a, 2)));
        check_comb(&m, 4, 4, |a, _| (a << 2) & 0xF);
        let m = comb_module(2, |m, a, _| m.arena.add(Expr::Slice(a, 2, 1)));
        check_comb(&m, 4, 4, |a, _| (a >> 1) & 0b11);
    }

    #[test]
    fn mux_selects() {
        let m = comb_module(4, |m, a, b| {
            let c = m.arena.add(Expr::RedOr(a));
            m.arena.add(Expr::Mux { cond: c, then_: a, else_: b })
        });
        check_comb(&m, 4, 4, |a, b| if a != 0 { a } else { b });
    }

    #[test]
    fn register_becomes_latch_with_reset_init() {
        let mut m = Module::new("m");
        let q = m.add_net("q", 4);
        let y = m.add_port("y", PortDir::Output, 4);
        let one = m.lit(4, 1);
        let eq_ = m.sig(q);
        let nxt = m.arena.add(Expr::Add(eq_, one));
        m.add_reg(q, nxt, Value::from_u64(4, 0b1000));
        let eq2 = m.sig(q);
        m.assign(y, eq2);
        let lowered = m.to_aig().unwrap();
        assert_eq!(lowered.aig.num_latches(), 4);
        // init = 0b1000: bit 3 set.
        let inits: Vec<bool> = lowered.aig.latches().iter().map(|l| l.init).collect();
        assert_eq!(inits, vec![false, false, false, true]);
        // Simulate: counts 8, 9, 10...
        let reports = lowered.aig.simulate(&vec![vec![]; 3]);
        let val = |r: &veridic_aig::CycleReport| -> u64 {
            r.outputs
                .iter()
                .enumerate()
                .map(|(i, b)| (*b as u64) << i)
                .sum()
        };
        assert_eq!(val(&reports[0]), 8);
        assert_eq!(val(&reports[1]), 9);
        assert_eq!(val(&reports[2]), 10);
    }

    #[test]
    fn concat_order_in_bits() {
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 2);
        let b = m.add_port("b", PortDir::Input, 2);
        let y = m.add_port("y", PortDir::Output, 4);
        let ea = m.sig(a);
        let eb = m.sig(b);
        // y = {a, b}: a is the high half.
        let c = m.arena.add(Expr::Concat(vec![ea, eb]));
        m.assign(y, c);
        check_comb(&m, 2, 2, |a, b| a << 2 | b);
    }
}
