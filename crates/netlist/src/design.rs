//! Designs: module collections with hierarchy flattening.

use crate::expr::{Expr, ExprArena, ExprId, NetId};
use crate::module::{Conn, Module, PortDir};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced while elaborating or flattening a design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesignError {
    /// The named top module is not in the design.
    UnknownModule(String),
    /// An instance refers to a module not in the design.
    UnknownChild {
        /// Parent module name.
        parent: String,
        /// Instance name.
        instance: String,
        /// Missing child module name.
        child: String,
    },
    /// An instance connects a port that the child does not declare.
    UnknownPort {
        /// Child module name.
        child: String,
        /// Offending port name.
        port: String,
    },
    /// An instance connection has the wrong direction or width.
    BadConnection {
        /// Child module name.
        child: String,
        /// Port name.
        port: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A child input port is left unconnected.
    UnconnectedInput {
        /// Child module name.
        child: String,
        /// Port name.
        port: String,
    },
    /// The hierarchy contains an instantiation cycle.
    RecursiveHierarchy(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::UnknownModule(m) => write!(f, "unknown module {m}"),
            DesignError::UnknownChild { parent, instance, child } => {
                write!(f, "instance {instance} in {parent} refers to unknown module {child}")
            }
            DesignError::UnknownPort { child, port } => {
                write!(f, "module {child} has no port {port}")
            }
            DesignError::BadConnection { child, port, reason } => {
                write!(f, "bad connection to {child}.{port}: {reason}")
            }
            DesignError::UnconnectedInput { child, port } => {
                write!(f, "input {child}.{port} is unconnected")
            }
            DesignError::RecursiveHierarchy(m) => {
                write!(f, "module {m} instantiates itself (possibly indirectly)")
            }
        }
    }
}

impl Error for DesignError {}

/// A collection of modules with a designated top.
///
/// # Examples
///
/// ```
/// use veridic_netlist::{Design, Module};
///
/// let mut d = Design::new("top");
/// d.add_module(Module::new("top"));
/// assert!(d.module("top").is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Design {
    modules: Vec<Module>,
    by_name: BTreeMap<String, usize>,
    top: String,
}

impl Design {
    /// Creates an empty design whose top module will be `top`.
    pub fn new(top: impl Into<String>) -> Self {
        Design { modules: Vec::new(), by_name: BTreeMap::new(), top: top.into() }
    }

    /// Adds (or replaces) a module.
    pub fn add_module(&mut self, m: Module) {
        if let Some(&i) = self.by_name.get(&m.name) {
            self.modules[i] = m;
        } else {
            self.by_name.insert(m.name.clone(), self.modules.len());
            self.modules.push(m);
        }
    }

    /// The designated top module name.
    pub fn top_name(&self) -> &str {
        &self.top
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.by_name.get(name).map(|&i| &self.modules[i])
    }

    /// Mutable module lookup.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        let i = *self.by_name.get(name)?;
        Some(&mut self.modules[i])
    }

    /// Iterates over all modules.
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter()
    }

    /// Returns the names of all *leaf* modules (no child instances), the
    /// unit of verification in the paper's methodology.
    pub fn leaf_names(&self) -> Vec<&str> {
        self.modules
            .iter()
            .filter(|m| m.is_leaf())
            .map(|m| m.name.as_str())
            .collect()
    }

    /// Flattens the hierarchy below `top` into a single instance-free
    /// module. Net names become hierarchical (`u0.u1.net`).
    ///
    /// # Errors
    ///
    /// Returns a [`DesignError`] for unknown modules/ports, direction or
    /// width mismatches, unconnected child inputs, or recursive hierarchies.
    pub fn flatten(&self) -> Result<Module, DesignError> {
        self.flatten_from(&self.top)
    }

    /// Flattens the hierarchy below an arbitrary module.
    ///
    /// # Errors
    ///
    /// See [`Design::flatten`].
    pub fn flatten_from(&self, top: &str) -> Result<Module, DesignError> {
        let top_mod = self
            .module(top)
            .ok_or_else(|| DesignError::UnknownModule(top.to_string()))?;
        let mut flat = Module::new(format!("{}_flat", top));
        flat.attrs = top_mod.attrs.clone();
        let mut stack = vec![top.to_string()];
        // Map top ports 1:1.
        let mut net_map: BTreeMap<NetId, NetId> = BTreeMap::new();
        for net in 0..top_mod.nets.len() {
            let src = NetId(net as u32);
            let n = top_mod.net(src);
            let dst = flat.add_net(n.name.clone(), n.width);
            flat.net_mut(dst).attrs = n.attrs.clone();
            net_map.insert(src, dst);
        }
        for p in &top_mod.ports {
            flat.expose(net_map[&p.net], p.dir);
        }
        self.inline_module(top_mod, "", &net_map, &mut flat, &mut stack)?;
        Ok(flat)
    }

    /// Copies `src`'s assigns/regs into `flat` (net ids already mapped via
    /// `net_map`), then recursively inlines its instances.
    fn inline_module(
        &self,
        src: &Module,
        prefix: &str,
        net_map: &BTreeMap<NetId, NetId>,
        flat: &mut Module,
        stack: &mut Vec<String>,
    ) -> Result<(), DesignError> {
        let mut expr_map: BTreeMap<ExprId, ExprId> = BTreeMap::new();
        for (net, expr) in &src.assigns {
            let e = clone_expr(&src.arena, *expr, net_map, &mut flat.arena, &mut expr_map);
            flat.assign(net_map[net], e);
        }
        for r in &src.regs {
            let e = clone_expr(&src.arena, r.next, net_map, &mut flat.arena, &mut expr_map);
            flat.add_reg(net_map[&r.q], e, r.reset_value.clone());
        }
        for inst in &src.instances {
            let child = self.module(&inst.module).ok_or_else(|| DesignError::UnknownChild {
                parent: src.name.clone(),
                instance: inst.name.clone(),
                child: inst.module.clone(),
            })?;
            if stack.contains(&inst.module) {
                return Err(DesignError::RecursiveHierarchy(inst.module.clone()));
            }
            let child_prefix = if prefix.is_empty() {
                format!("{}.", inst.name)
            } else {
                format!("{prefix}{}.", inst.name)
            };
            // Create nets for every child net under the hierarchical name.
            let mut child_net_map: BTreeMap<NetId, NetId> = BTreeMap::new();
            for i in 0..child.nets.len() {
                let src_id = NetId(i as u32);
                let n = child.net(src_id);
                let dst = flat.add_net(format!("{child_prefix}{}", n.name), n.width);
                flat.net_mut(dst).attrs = n.attrs.clone();
                child_net_map.insert(src_id, dst);
            }
            // Wire connections.
            for p in &child.ports {
                match inst.conns.get(&p.name) {
                    Some(Conn::In(e)) => {
                        if p.dir != PortDir::Input {
                            return Err(DesignError::BadConnection {
                                child: child.name.clone(),
                                port: p.name.clone(),
                                reason: "expression connected to an output port".into(),
                            });
                        }
                        let ew = src.arena.width(*e);
                        if ew != child.net_width(p.net) {
                            return Err(DesignError::BadConnection {
                                child: child.name.clone(),
                                port: p.name.clone(),
                                reason: format!(
                                    "width mismatch: port is {} bits, expression is {} bits",
                                    child.net_width(p.net),
                                    ew
                                ),
                            });
                        }
                        let e2 =
                            clone_expr(&src.arena, *e, net_map, &mut flat.arena, &mut expr_map);
                        flat.assign(child_net_map[&p.net], e2);
                    }
                    Some(Conn::Out(n)) => {
                        if p.dir != PortDir::Output {
                            return Err(DesignError::BadConnection {
                                child: child.name.clone(),
                                port: p.name.clone(),
                                reason: "net sink connected to an input port".into(),
                            });
                        }
                        if src.net_width(*n) != child.net_width(p.net) {
                            return Err(DesignError::BadConnection {
                                child: child.name.clone(),
                                port: p.name.clone(),
                                reason: "output width mismatch".into(),
                            });
                        }
                        let w = child.net_width(p.net);
                        let port_ref = flat.arena.net(child_net_map[&p.net], w);
                        flat.assign(net_map[n], port_ref);
                    }
                    None => {
                        if p.dir == PortDir::Input {
                            return Err(DesignError::UnconnectedInput {
                                child: child.name.clone(),
                                port: p.name.clone(),
                            });
                        }
                        // Unconnected outputs simply dangle.
                    }
                }
            }
            // Check for connections to nonexistent ports.
            for name in inst.conns.keys() {
                if child.find_port(name).is_none() {
                    return Err(DesignError::UnknownPort {
                        child: child.name.clone(),
                        port: name.clone(),
                    });
                }
            }
            stack.push(inst.module.clone());
            self.inline_module(child, &child_prefix, &child_net_map, flat, stack)?;
            stack.pop();
        }
        Ok(())
    }
}

/// Deep-copies an expression from one arena into another, remapping nets.
pub(crate) fn clone_expr(
    src: &ExprArena,
    id: ExprId,
    net_map: &BTreeMap<NetId, NetId>,
    dst: &mut ExprArena,
    memo: &mut BTreeMap<ExprId, ExprId>,
) -> ExprId {
    if let Some(&m) = memo.get(&id) {
        return m;
    }
    let out = match src.node(id).clone() {
        Expr::Const(v) => dst.add(Expr::Const(v)),
        Expr::Net(n) => dst.net(net_map[&n], src.width(id)),
        Expr::Not(a) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::Not(a))
        }
        Expr::And(a, b) => bin(src, dst, net_map, memo, a, b, Expr::And),
        Expr::Or(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Or),
        Expr::Xor(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Xor),
        Expr::Add(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Add),
        Expr::Sub(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Sub),
        Expr::Mul(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Mul),
        Expr::Eq(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Eq),
        Expr::Ne(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Ne),
        Expr::Ult(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Ult),
        Expr::Ule(a, b) => bin(src, dst, net_map, memo, a, b, Expr::Ule),
        Expr::RedAnd(a) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::RedAnd(a))
        }
        Expr::RedOr(a) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::RedOr(a))
        }
        Expr::RedXor(a) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::RedXor(a))
        }
        Expr::Shl(a, n) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::Shl(a, n))
        }
        Expr::Shr(a, n) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::Shr(a, n))
        }
        Expr::Mux { cond, then_, else_ } => {
            let cond = clone_expr(src, cond, net_map, dst, memo);
            let then_ = clone_expr(src, then_, net_map, dst, memo);
            let else_ = clone_expr(src, else_, net_map, dst, memo);
            dst.add(Expr::Mux { cond, then_, else_ })
        }
        Expr::Concat(parts) => {
            let parts = parts
                .into_iter()
                .map(|p| clone_expr(src, p, net_map, dst, memo))
                .collect();
            dst.add(Expr::Concat(parts))
        }
        Expr::Repeat(n, a) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::Repeat(n, a))
        }
        Expr::Slice(a, hi, lo) => {
            let a = clone_expr(src, a, net_map, dst, memo);
            dst.add(Expr::Slice(a, hi, lo))
        }
    };
    memo.insert(id, out);
    out
}

fn bin(
    src: &ExprArena,
    dst: &mut ExprArena,
    net_map: &BTreeMap<NetId, NetId>,
    memo: &mut BTreeMap<ExprId, ExprId>,
    a: ExprId,
    b: ExprId,
    mk: fn(ExprId, ExprId) -> Expr,
) -> ExprId {
    let a = clone_expr(src, a, net_map, dst, memo);
    let b = clone_expr(src, b, net_map, dst, memo);
    dst.add(mk(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Instance;
    use crate::value::Value;

    /// child: y = a ^ b (4-bit)
    fn child() -> Module {
        let mut m = Module::new("child");
        let a = m.add_port("a", PortDir::Input, 4);
        let b = m.add_port("b", PortDir::Input, 4);
        let y = m.add_port("y", PortDir::Output, 4);
        let ea = m.sig(a);
        let eb = m.sig(b);
        let x = m.arena.add(Expr::Xor(ea, eb));
        m.assign(y, x);
        m
    }

    fn top_with_child() -> Design {
        let mut top = Module::new("top");
        let p = top.add_port("p", PortDir::Input, 4);
        let q = top.add_port("q", PortDir::Input, 4);
        let r = top.add_port("r", PortDir::Output, 4);
        let ep = top.sig(p);
        let eq_ = top.sig(q);
        let mut conns = BTreeMap::new();
        conns.insert("a".to_string(), Conn::In(ep));
        conns.insert("b".to_string(), Conn::In(eq_));
        conns.insert("y".to_string(), Conn::Out(r));
        top.add_instance(Instance { module: "child".into(), name: "u0".into(), conns });
        let mut d = Design::new("top");
        d.add_module(child());
        d.add_module(top);
        d
    }

    #[test]
    fn flatten_single_level() {
        let d = top_with_child();
        let flat = d.flatten().unwrap();
        assert!(flat.is_leaf());
        assert!(flat.find_net("u0.a").is_some());
        assert!(flat.find_net("u0.y").is_some());
        // Behaviour check: r = p ^ q.
        let r = flat.find_port("r").unwrap().net;
        let vals = |n: NetId| -> Value {
            let name = flat.net(n).name.clone();
            match name.as_str() {
                "p" => Value::from_u64(4, 0b1100),
                "q" => Value::from_u64(4, 0b1010),
                _ => panic!("unexpected source net {name}"),
            }
        };
        // Evaluate by following assigns transitively.
        let v = eval_net(&flat, r, &vals);
        assert_eq!(v.to_u64(), 0b0110);
    }

    /// Tiny reference evaluator for tests: follows assigns recursively.
    fn eval_net(m: &Module, net: NetId, inputs: &dyn Fn(NetId) -> Value) -> Value {
        if let Some((_, e)) = m.assigns.iter().find(|(n, _)| *n == net) {
            m.arena.eval(*e, &|n| eval_net(m, n, inputs))
        } else {
            inputs(net)
        }
    }

    #[test]
    fn flatten_two_levels_prefixes_names() {
        let mut mid = Module::new("mid");
        let a = mid.add_port("a", PortDir::Input, 4);
        let y = mid.add_port("y", PortDir::Output, 4);
        let ea = mid.sig(a);
        let eb = mid.lit(4, 0xF);
        let mut conns = BTreeMap::new();
        conns.insert("a".into(), Conn::In(ea));
        conns.insert("b".into(), Conn::In(eb));
        conns.insert("y".into(), Conn::Out(y));
        mid.add_instance(Instance { module: "child".into(), name: "inner".into(), conns });

        let mut top = Module::new("top");
        let p = top.add_port("p", PortDir::Input, 4);
        let r = top.add_port("r", PortDir::Output, 4);
        let ep = top.sig(p);
        let mut conns = BTreeMap::new();
        conns.insert("a".into(), Conn::In(ep));
        conns.insert("y".into(), Conn::Out(r));
        top.add_instance(Instance { module: "mid".into(), name: "m0".into(), conns });

        let mut d = Design::new("top");
        d.add_module(child());
        d.add_module(mid);
        d.add_module(top);
        let flat = d.flatten().unwrap();
        assert!(flat.find_net("m0.inner.y").is_some(), "nested names prefixed");
        let r = flat.find_port("r").unwrap().net;
        let v = eval_net(&flat, r, &|n| {
            assert_eq!(flat.net(n).name, "p");
            Value::from_u64(4, 0b0001)
        });
        assert_eq!(v.to_u64(), 0b1110);
    }

    #[test]
    fn unconnected_input_is_error() {
        let mut top = Module::new("top");
        let r = top.add_port("r", PortDir::Output, 4);
        let mut conns = BTreeMap::new();
        conns.insert("y".into(), Conn::Out(r));
        top.add_instance(Instance { module: "child".into(), name: "u0".into(), conns });
        let mut d = Design::new("top");
        d.add_module(child());
        d.add_module(top);
        match d.flatten() {
            Err(DesignError::UnconnectedInput { port, .. }) => assert_eq!(port, "a"),
            other => panic!("expected UnconnectedInput, got {other:?}"),
        }
    }

    #[test]
    fn unknown_port_is_error() {
        let mut top = Module::new("top");
        let r = top.add_port("r", PortDir::Output, 4);
        let z = top.lit(4, 0);
        let mut conns = BTreeMap::new();
        conns.insert("a".into(), Conn::In(z));
        conns.insert("b".into(), Conn::In(z));
        conns.insert("nonexistent".into(), Conn::In(z));
        conns.insert("y".into(), Conn::Out(r));
        top.add_instance(Instance { module: "child".into(), name: "u0".into(), conns });
        let mut d = Design::new("top");
        d.add_module(child());
        d.add_module(top);
        assert!(matches!(d.flatten(), Err(DesignError::UnknownPort { .. })));
    }

    #[test]
    fn width_mismatch_is_error() {
        let mut top = Module::new("top");
        let r = top.add_port("r", PortDir::Output, 4);
        let z = top.lit(8, 0); // wrong width
        let z4 = top.lit(4, 0);
        let mut conns = BTreeMap::new();
        conns.insert("a".into(), Conn::In(z));
        conns.insert("b".into(), Conn::In(z4));
        conns.insert("y".into(), Conn::Out(r));
        top.add_instance(Instance { module: "child".into(), name: "u0".into(), conns });
        let mut d = Design::new("top");
        d.add_module(child());
        d.add_module(top);
        assert!(matches!(d.flatten(), Err(DesignError::BadConnection { .. })));
    }

    #[test]
    fn leaf_names_reports_leaves_only() {
        let d = top_with_child();
        assert_eq!(d.leaf_names(), vec!["child"]);
    }

    #[test]
    fn registers_survive_flattening() {
        let mut leaf = Module::new("leaf");
        let q = leaf.add_net("q", 4);
        let y = leaf.add_port("y", PortDir::Output, 4);
        let one = leaf.lit(4, 1);
        let eq_ = leaf.sig(q);
        let nxt = leaf.arena.add(Expr::Add(eq_, one));
        leaf.add_reg(q, nxt, Value::from_u64(4, 0b1000));
        let eq2 = leaf.sig(q);
        leaf.assign(y, eq2);

        let mut top = Module::new("top");
        let r = top.add_port("r", PortDir::Output, 4);
        let mut conns = BTreeMap::new();
        conns.insert("y".into(), Conn::Out(r));
        top.add_instance(Instance { module: "leaf".into(), name: "u".into(), conns });
        let mut d = Design::new("top");
        d.add_module(leaf);
        d.add_module(top);
        let flat = d.flatten().unwrap();
        assert_eq!(flat.regs.len(), 1);
        assert_eq!(flat.net(flat.regs[0].q).name, "u.q");
        assert_eq!(flat.regs[0].reset_value, Value::from_u64(4, 0b1000));
    }
}
