//! The versioned binary codec for persisted verification state.
//!
//! Everything the campaign service writes to disk — suspended
//! [`RunCheckpoint`]s (wrapped in a fingerprinted [`CheckpointFile`]
//! envelope), adaptive-scheduler lane state, and the journal's
//! completed [`PropertyRecord`]s — round-trips through this module.
//! The format is length-prefixed varint lists over [`crate::wire`]
//! primitives: checkpoint payloads are dominated by BDD node triples
//! whose slot references are small by construction (children precede
//! parents in the transfer layer's level order), so varints shrink the
//! common node to a few bytes.
//!
//! Decoding is total: every failure mode — truncation, a flipped byte,
//! a stale format version, a checkpoint taken from a different AIG or
//! under different [`CheckOptions`](veridic_mc::CheckOptions) — is a
//! typed [`CodecError`], never a panic and never a silently wrong
//! resume. Topological validity of imported BDDs is enforced by
//! [`ExportedBdd::from_raw_parts`] / [`DeltaBdd::from_raw_parts`]
//! rather than re-implemented here.

use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

use veridic_bdd::{DeltaBdd, ExportedBdd, TransferFormatError};
use veridic_chipgen::{Category, PropertyType};
use veridic_core::flow::PropertyRecord;
use veridic_mc::{
    BadCoiStats, BddWorkerStats, CheckStats, EngineCheckpoint, EngineEvent, EngineId,
    EventOutcome, EventResources, PreanalysisStats, ReachCheckpoint, RunCheckpoint, Trace,
    Verdict,
};

use crate::scheduler::{AdaptiveCheckpoint, LaneCheckpoint, LaneStatus};
use crate::wire::{self, fnv1a, put_flag, put_string, put_varint, Reader, WireError};

/// Magic prefix of a [`CheckpointFile`].
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"VCKP";
/// Magic prefix of an encoded [`PropertyRecord`] (journal `done` lines).
pub const RECORD_MAGIC: [u8; 4] = *b"VREC";
/// Current format version; bump on any layout change.
pub const FORMAT_VERSION: u8 = 1;

/// A malformed or mismatched persisted artifact.
///
/// The crash-recovery contract hinges on these being *typed*: a daemon
/// restarting over a damaged checkpoint must degrade to "re-run the
/// property from scratch", and the operator must be able to tell a
/// torn write ([`CodecError::Checksum`]) from a campaign directory
/// reused with a different chip ([`CodecError::AigFingerprint`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u8),
    /// The trailing FNV-1a checksum does not match the content.
    Checksum {
        /// Checksum recomputed over the content.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// The checkpoint was taken on a different AIG.
    AigFingerprint {
        /// Fingerprint of the AIG the resume is for.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// The checkpoint was taken under different check options.
    OptionsFingerprint {
        /// Fingerprint of the options the resume is for.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// An enum tag byte has no meaning in this version.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A structural wire-level failure (truncation, overflow, UTF-8…).
    Wire(WireError),
    /// A decoded BDD failed the transfer layer's topology validation.
    Format(TransferFormatError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a campaign artifact (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "format version {v} not supported (this build reads {FORMAT_VERSION})")
            }
            CodecError::Checksum { expected, found } => {
                write!(f, "checksum mismatch: content hashes to {expected:#018x}, file says {found:#018x}")
            }
            CodecError::AigFingerprint { expected, found } => {
                write!(f, "checkpoint is for a different AIG (expected {expected:#018x}, found {found:#018x})")
            }
            CodecError::OptionsFingerprint { expected, found } => {
                write!(f, "checkpoint was taken under different options (expected {expected:#018x}, found {found:#018x})")
            }
            CodecError::BadTag { what, tag } => write!(f, "{what}: unknown tag {tag}"),
            CodecError::Wire(e) => write!(f, "wire error: {e}"),
            CodecError::Format(e) => write!(f, "invalid BDD payload: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Wire(e) => Some(e),
            CodecError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        CodecError::Wire(e)
    }
}

impl From<TransferFormatError> for CodecError {
    fn from(e: TransferFormatError) -> Self {
        CodecError::Format(e)
    }
}

/// Interns a decoded engine name into a `'static` string.
///
/// [`EngineId::Custom`] and [`Verdict::Proved`] carry `&'static str` —
/// fine for names born in source text, but a deserializer reads them
/// from bytes. The known portfolio names map to their existing
/// statics; anything else is leaked **once** and reused via a registry,
/// so decoding a million records with a custom engine leaks one string,
/// not a million.
fn intern_engine_name(name: &str) -> &'static str {
    const KNOWN: [&str; 6] =
        ["bmc", "induction", "bmc-induction", "bdd-umc", "pobdd-umc", "portfolio"];
    for k in KNOWN {
        if k == name {
            return k;
        }
    }
    if name == veridic_mc::PREANALYSIS {
        return veridic_mc::PREANALYSIS;
    }
    static LEAKED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut leaked = LEAKED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = leaked.iter().find(|s| **s == name) {
        return s;
    }
    let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
    leaked.push(s);
    s
}

// ---------------------------------------------------------------------
// BDD transfer payloads
// ---------------------------------------------------------------------

fn put_exported(out: &mut Vec<u8>, bdd: &ExportedBdd) {
    let order = bdd.source_order();
    put_varint(out, order.len() as u64);
    for v in order {
        put_varint(out, u64::from(*v));
    }
    // node_count() includes the shared terminal; the wire carries only
    // the decision-node triples raw_nodes() yields.
    let nodes: Vec<(u32, u32, u32)> = bdd.raw_nodes().collect();
    put_varint(out, nodes.len() as u64);
    for (var, lo, hi) in nodes {
        put_varint(out, u64::from(var));
        put_varint(out, u64::from(lo));
        put_varint(out, u64::from(hi));
    }
    put_varint(out, u64::from(bdd.raw_root()));
}

fn get_exported(r: &mut Reader<'_>) -> Result<ExportedBdd, CodecError> {
    let order_len = r.length("bdd order", 1)?;
    let mut order = Vec::with_capacity(order_len);
    for _ in 0..order_len {
        order.push(r.varint_u32("order var")?);
    }
    let node_len = r.length("bdd nodes", 3)?;
    let mut nodes = Vec::with_capacity(node_len);
    for _ in 0..node_len {
        let var = r.varint_u32("node var")?;
        let lo = r.varint_u32("node lo")?;
        let hi = r.varint_u32("node hi")?;
        nodes.push((var, lo, hi));
    }
    let root = r.varint_u32("bdd root")?;
    Ok(ExportedBdd::from_raw_parts(nodes, root, order)?)
}

fn put_delta(out: &mut Vec<u8>, delta: &DeltaBdd) {
    put_varint(out, delta.baseline_len() as u64);
    let order = delta.source_order();
    put_varint(out, order.len() as u64);
    for v in order {
        put_varint(out, u64::from(*v));
    }
    put_varint(out, delta.delta_node_count() as u64);
    for (var, lo, hi) in delta.raw_nodes() {
        put_varint(out, u64::from(var));
        put_varint(out, u64::from(lo));
        put_varint(out, u64::from(hi));
    }
    put_varint(out, u64::from(delta.raw_root()));
}

fn get_delta(r: &mut Reader<'_>) -> Result<DeltaBdd, CodecError> {
    let baseline_len = r.varint_usize("delta baseline")?;
    let order_len = r.length("delta order", 1)?;
    let mut order = Vec::with_capacity(order_len);
    for _ in 0..order_len {
        order.push(r.varint_u32("order var")?);
    }
    let node_len = r.length("delta nodes", 3)?;
    let mut nodes = Vec::with_capacity(node_len);
    for _ in 0..node_len {
        let var = r.varint_u32("node var")?;
        let lo = r.varint_u32("node lo")?;
        let hi = r.varint_u32("node hi")?;
        nodes.push((var, lo, hi));
    }
    let root = r.varint_u32("delta root")?;
    Ok(DeltaBdd::from_raw_parts(baseline_len, nodes, root, order)?)
}

// ---------------------------------------------------------------------
// Engine checkpoints
// ---------------------------------------------------------------------

fn put_reach(out: &mut Vec<u8>, reach: &ReachCheckpoint) {
    put_varint(out, reach.depth as u64);
    put_varint(out, u64::from(reach.window_vars));
    put_varint(out, reach.reached.len() as u64);
    for bdd in &reach.reached {
        put_exported(out, bdd);
    }
    put_varint(out, reach.frontier.len() as u64);
    for delta in &reach.frontier {
        put_delta(out, delta);
    }
}

fn get_reach(r: &mut Reader<'_>) -> Result<ReachCheckpoint, CodecError> {
    let depth = r.varint_usize("reach depth")?;
    let window_vars = r.varint_u32("window vars")?;
    let n = r.length("reached windows", 1)?;
    let mut reached = Vec::with_capacity(n);
    for _ in 0..n {
        reached.push(get_exported(r)?);
    }
    let n = r.length("frontier windows", 1)?;
    let mut frontier = Vec::with_capacity(n);
    for _ in 0..n {
        frontier.push(get_delta(r)?);
    }
    Ok(ReachCheckpoint { depth, reached, frontier, window_vars })
}

fn put_engine_checkpoint(out: &mut Vec<u8>, state: &EngineCheckpoint) {
    match state {
        EngineCheckpoint::Bmc { next_depth } => {
            out.push(0);
            put_varint(out, *next_depth as u64);
        }
        EngineCheckpoint::Induction { next_k } => {
            out.push(1);
            put_varint(out, *next_k as u64);
        }
        EngineCheckpoint::Reach(reach) => {
            out.push(2);
            put_reach(out, reach);
        }
    }
}

fn get_engine_checkpoint(r: &mut Reader<'_>) -> Result<EngineCheckpoint, CodecError> {
    match r.byte()? {
        0 => Ok(EngineCheckpoint::Bmc { next_depth: r.varint_usize("bmc depth")? }),
        1 => Ok(EngineCheckpoint::Induction { next_k: r.varint_usize("induction k")? }),
        2 => Ok(EngineCheckpoint::Reach(get_reach(r)?)),
        tag => Err(CodecError::BadTag { what: "engine checkpoint", tag }),
    }
}

// ---------------------------------------------------------------------
// Events and statistics
// ---------------------------------------------------------------------

fn put_engine_id(out: &mut Vec<u8>, id: EngineId) {
    put_string(out, id.as_str());
}

fn get_engine_id(r: &mut Reader<'_>) -> Result<EngineId, CodecError> {
    let name = r.string("engine id")?;
    Ok(EngineId::from_name(&name).unwrap_or(EngineId::Custom(intern_engine_name(&name))))
}

fn put_outcome(out: &mut Vec<u8>, outcome: &EventOutcome) {
    match outcome {
        EventOutcome::Falsified => out.push(0),
        EventOutcome::CleanToDepth(d) => {
            out.push(1);
            put_varint(out, *d as u64);
        }
        EventOutcome::ProvedAtK(k) => {
            out.push(2);
            put_varint(out, *k as u64);
        }
        EventOutcome::Inconclusive => out.push(3),
        EventOutcome::Proved => out.push(4),
        EventOutcome::FalsifiedAtDepth(d) => {
            out.push(5);
            put_varint(out, *d as u64);
        }
        EventOutcome::ResourceOut => out.push(6),
        EventOutcome::Suspended => out.push(7),
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<EventOutcome, CodecError> {
    Ok(match r.byte()? {
        0 => EventOutcome::Falsified,
        1 => EventOutcome::CleanToDepth(r.varint_usize("clean depth")?),
        2 => EventOutcome::ProvedAtK(r.varint_usize("proved k")?),
        3 => EventOutcome::Inconclusive,
        4 => EventOutcome::Proved,
        5 => EventOutcome::FalsifiedAtDepth(r.varint_usize("falsified depth")?),
        6 => EventOutcome::ResourceOut,
        7 => EventOutcome::Suspended,
        tag => return Err(CodecError::BadTag { what: "event outcome", tag }),
    })
}

fn put_event(out: &mut Vec<u8>, event: &EngineEvent) {
    put_string(out, &event.bad);
    put_engine_id(out, event.engine);
    put_outcome(out, &event.outcome);
    put_varint(out, event.resources.sat_conflicts);
    put_varint(out, event.resources.bdd_allocated);
    put_varint(out, event.resources.bdd_peak_live as u64);
    put_varint(out, event.resources.rounds);
}

fn get_event(r: &mut Reader<'_>) -> Result<EngineEvent, CodecError> {
    let bad = r.string("event bad")?;
    let engine = get_engine_id(r)?;
    let outcome = get_outcome(r)?;
    let resources = EventResources {
        sat_conflicts: r.varint()?,
        bdd_allocated: r.varint()?,
        bdd_peak_live: r.varint_usize("peak live")?,
        rounds: r.varint()?,
    };
    Ok(EngineEvent { bad, engine, outcome, resources })
}

fn put_stats(out: &mut Vec<u8>, stats: &CheckStats) {
    put_varint(out, stats.events.len() as u64);
    for event in &stats.events {
        put_event(out, event);
    }
    put_varint(out, stats.coi_latches as u64);
    put_varint(out, stats.coi_ands as u64);
    put_varint(out, stats.per_bad_coi.len() as u64);
    for coi in &stats.per_bad_coi {
        put_string(out, &coi.bad);
        put_varint(out, coi.latches as u64);
        put_varint(out, coi.ands as u64);
    }
    put_varint(out, stats.preanalysis.bads_analyzed as u64);
    put_varint(out, stats.preanalysis.stuck_latches as u64);
    put_varint(out, stats.preanalysis.folded_ands as u64);
    put_varint(out, stats.preanalysis.vacuous as u64);
    put_varint(out, stats.bdd_nodes as u64);
    put_varint(out, stats.bdd_allocated);
    put_varint(out, stats.bdd_quota_hits as u64);
    put_varint(out, stats.sat_conflicts);
    put_varint(out, stats.iterations as u64);
    put_varint(out, stats.worker_bdd.len() as u64);
    for w in &stats.worker_bdd {
        put_varint(out, w.peak_live_nodes as u64);
        put_varint(out, w.allocated);
        put_flag(out, w.quota_hit);
        put_varint(out, w.reorders);
        put_varint(out, w.reorder_nodes_before);
        put_varint(out, w.reorder_nodes_after);
    }
    put_varint(out, stats.reorders);
    put_varint(out, stats.reorder_nodes_before);
    put_varint(out, stats.reorder_nodes_after);
    put_varint(out, stats.static_order_span_before);
    put_varint(out, stats.static_order_span_after);
}

fn get_stats(r: &mut Reader<'_>) -> Result<CheckStats, CodecError> {
    let n = r.length("events", 4)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event(r)?);
    }
    let coi_latches = r.varint_usize("coi latches")?;
    let coi_ands = r.varint_usize("coi ands")?;
    let n = r.length("per-bad coi", 3)?;
    let mut per_bad_coi = Vec::with_capacity(n);
    for _ in 0..n {
        per_bad_coi.push(BadCoiStats {
            bad: r.string("coi bad")?,
            latches: r.varint_usize("coi latches")?,
            ands: r.varint_usize("coi ands")?,
        });
    }
    let preanalysis = PreanalysisStats {
        bads_analyzed: r.varint_usize("bads analyzed")?,
        stuck_latches: r.varint_usize("stuck latches")?,
        folded_ands: r.varint_usize("folded ands")?,
        vacuous: r.varint_usize("vacuous")?,
    };
    let bdd_nodes = r.varint_usize("bdd nodes")?;
    let bdd_allocated = r.varint()?;
    let bdd_quota_hits = r.varint_usize("quota hits")?;
    let sat_conflicts = r.varint()?;
    let iterations = r.varint_usize("iterations")?;
    let n = r.length("worker bdd", 6)?;
    let mut worker_bdd = Vec::with_capacity(n);
    for _ in 0..n {
        worker_bdd.push(BddWorkerStats {
            peak_live_nodes: r.varint_usize("worker peak")?,
            allocated: r.varint()?,
            quota_hit: r.flag("worker quota")?,
            reorders: r.varint()?,
            reorder_nodes_before: r.varint()?,
            reorder_nodes_after: r.varint()?,
        });
    }
    Ok(CheckStats {
        events,
        coi_latches,
        coi_ands,
        per_bad_coi,
        preanalysis,
        bdd_nodes,
        bdd_allocated,
        bdd_quota_hits,
        sat_conflicts,
        iterations,
        worker_bdd,
        reorders: r.varint()?,
        reorder_nodes_before: r.varint()?,
        reorder_nodes_after: r.varint()?,
        static_order_span_before: r.varint()?,
        static_order_span_after: r.varint()?,
    })
}

// ---------------------------------------------------------------------
// Verdicts
// ---------------------------------------------------------------------

fn put_trace(out: &mut Vec<u8>, trace: &Trace) {
    put_varint(out, trace.bad_index as u64);
    put_varint(out, trace.inputs.len() as u64);
    for cycle in &trace.inputs {
        put_varint(out, cycle.len() as u64);
        let mut byte = 0u8;
        for (i, bit) in cycle.iter().enumerate() {
            if *bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if cycle.len() % 8 != 0 {
            out.push(byte);
        }
    }
}

fn get_trace(r: &mut Reader<'_>) -> Result<Trace, CodecError> {
    let bad_index = r.varint_usize("trace bad")?;
    let cycles = r.length("trace cycles", 1)?;
    let mut inputs = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let bits = r.varint_usize("cycle width")?;
        let raw = r.bytes(bits.div_ceil(8))?;
        let mut cycle = Vec::with_capacity(bits);
        for i in 0..bits {
            cycle.push(raw[i / 8] & (1 << (i % 8)) != 0);
        }
        inputs.push(cycle);
    }
    Ok(Trace { inputs, bad_index })
}

fn put_verdict(out: &mut Vec<u8>, verdict: &Verdict) {
    match verdict {
        Verdict::Proved { engine } => {
            out.push(0);
            put_string(out, engine);
        }
        Verdict::Falsified(trace) => {
            out.push(1);
            put_trace(out, trace);
        }
        Verdict::ResourceOut { reason } => {
            out.push(2);
            put_string(out, reason);
        }
    }
}

fn get_verdict(r: &mut Reader<'_>) -> Result<Verdict, CodecError> {
    match r.byte()? {
        0 => {
            let engine = r.string("proved engine")?;
            Ok(Verdict::Proved { engine: intern_engine_name(&engine) })
        }
        1 => Ok(Verdict::Falsified(get_trace(r)?)),
        2 => Ok(Verdict::ResourceOut { reason: r.string("resource reason")? }),
        tag => Err(CodecError::BadTag { what: "verdict", tag }),
    }
}

// ---------------------------------------------------------------------
// Portfolio and adaptive run state
// ---------------------------------------------------------------------

fn put_run_checkpoint(out: &mut Vec<u8>, ck: &RunCheckpoint) {
    put_varint(out, ck.bad_index as u64);
    put_varint(out, ck.slot as u64);
    put_engine_checkpoint(out, &ck.state);
    put_stats(out, &ck.stats);
    put_varint(out, ck.reasons.len() as u64);
    for reason in &ck.reasons {
        put_string(out, reason);
    }
}

fn get_run_checkpoint(r: &mut Reader<'_>) -> Result<RunCheckpoint, CodecError> {
    let bad_index = r.varint_usize("bad index")?;
    let slot = r.varint_usize("slot")?;
    let state = get_engine_checkpoint(r)?;
    let stats = get_stats(r)?;
    let n = r.length("reasons", 1)?;
    let mut reasons = Vec::with_capacity(n);
    for _ in 0..n {
        reasons.push(r.string("reason")?);
    }
    Ok(RunCheckpoint { bad_index, slot, state, stats, reasons })
}

fn put_lane(out: &mut Vec<u8>, lane: &LaneCheckpoint) {
    put_engine_id(out, lane.engine);
    put_varint(out, lane.granted);
    put_varint(out, lane.prev_progress);
    match &lane.status {
        LaneStatus::Fresh => out.push(0),
        LaneStatus::Suspended(ck) => {
            out.push(1);
            put_run_checkpoint(out, ck);
        }
        LaneStatus::Retired { reason, stats } => {
            out.push(2);
            put_string(out, reason);
            put_stats(out, stats);
        }
    }
}

fn get_lane(r: &mut Reader<'_>) -> Result<LaneCheckpoint, CodecError> {
    let engine = get_engine_id(r)?;
    let granted = r.varint()?;
    let prev_progress = r.varint()?;
    let status = match r.byte()? {
        0 => LaneStatus::Fresh,
        1 => LaneStatus::Suspended(get_run_checkpoint(r)?),
        2 => {
            let reason = r.string("retire reason")?;
            let stats = get_stats(r)?;
            LaneStatus::Retired { reason, stats }
        }
        tag => return Err(CodecError::BadTag { what: "lane status", tag }),
    };
    Ok(LaneCheckpoint { engine, granted, prev_progress, status })
}

fn put_adaptive(out: &mut Vec<u8>, ck: &AdaptiveCheckpoint) {
    put_varint(out, ck.bad_index as u64);
    put_varint(out, ck.cursor as u64);
    put_varint(out, ck.lanes.len() as u64);
    for lane in &ck.lanes {
        put_lane(out, lane);
    }
}

fn get_adaptive(r: &mut Reader<'_>) -> Result<AdaptiveCheckpoint, CodecError> {
    let bad_index = r.varint_usize("bad index")?;
    let cursor = r.varint_usize("cursor")?;
    let n = r.length("lanes", 2)?;
    let mut lanes = Vec::with_capacity(n);
    for _ in 0..n {
        lanes.push(get_lane(r)?);
    }
    Ok(AdaptiveCheckpoint { bad_index, cursor, lanes })
}

/// The resumable state of one property's verification run, as
/// persisted between slices.
#[derive(Clone, Debug)]
pub enum PersistedState {
    /// A default-policy portfolio run suspended mid-cascade.
    Portfolio(Box<RunCheckpoint>),
    /// An adaptive-scheduler run with per-lane state.
    Adaptive(AdaptiveCheckpoint),
}

impl PersistedState {
    /// The property (bad index) this state belongs to.
    pub fn bad_index(&self) -> usize {
        match self {
            PersistedState::Portfolio(ck) => ck.bad_index,
            PersistedState::Adaptive(ck) => ck.bad_index,
        }
    }
}

/// A fingerprinted on-disk checkpoint: the envelope that binds a
/// [`PersistedState`] to the exact AIG and
/// [`CheckOptions`](veridic_mc::CheckOptions) it was taken under.
///
/// Layout: `magic ∥ version ∥ aig_fp ∥ options_fp ∥ payload ∥ fnv64`,
/// where both fingerprints are raw little-endian u64 and the trailing
/// checksum covers every preceding byte. Resuming against a different
/// chip or different options is refused with a typed error instead of
/// silently producing a wrong verdict.
#[derive(Clone, Debug)]
pub struct CheckpointFile {
    /// [`Aig::fingerprint`](veridic_aig::Aig::fingerprint) of the
    /// property's AIG.
    pub aig_fingerprint: u64,
    /// [`CheckOptions::fingerprint`](veridic_mc::CheckOptions::fingerprint)
    /// of the run's options.
    pub options_fingerprint: u64,
    /// The suspended run state.
    pub state: PersistedState,
}

impl CheckpointFile {
    /// Serializes the envelope, checksummed.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&self.aig_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.options_fingerprint.to_le_bytes());
        match &self.state {
            PersistedState::Portfolio(ck) => {
                out.push(0);
                put_run_checkpoint(&mut out, ck);
            }
            PersistedState::Adaptive(ck) => {
                out.push(1);
                put_adaptive(&mut out, ck);
            }
        }
        let checksum = fnv1a(wire::FNV_OFFSET, &out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and fully validates an envelope. `expected` — the
    /// `(aig_fingerprint, options_fingerprint)` pair of the run about
    /// to resume — is checked when given; pass `None` to inspect a
    /// checkpoint without binding it (e.g. `campaign_ctl status`).
    pub fn decode(bytes: &[u8], expected: Option<(u64, u64)>) -> Result<CheckpointFile, CodecError> {
        let body = check_envelope(bytes, &CHECKPOINT_MAGIC)?;
        let mut r = Reader::new(body);
        let aig_fingerprint = u64::from_le_bytes(
            r.bytes(8)?.try_into().map_err(|_| WireError::Truncated { at: 0 })?,
        );
        let options_fingerprint = u64::from_le_bytes(
            r.bytes(8)?.try_into().map_err(|_| WireError::Truncated { at: 8 })?,
        );
        if let Some((aig_fp, opts_fp)) = expected {
            if aig_fingerprint != aig_fp {
                return Err(CodecError::AigFingerprint { expected: aig_fp, found: aig_fingerprint });
            }
            if options_fingerprint != opts_fp {
                return Err(CodecError::OptionsFingerprint {
                    expected: opts_fp,
                    found: options_fingerprint,
                });
            }
        }
        let state = match r.byte()? {
            0 => PersistedState::Portfolio(Box::new(get_run_checkpoint(&mut r)?)),
            1 => PersistedState::Adaptive(get_adaptive(&mut r)?),
            tag => return Err(CodecError::BadTag { what: "persisted state", tag }),
        };
        r.expect_end()?;
        Ok(CheckpointFile { aig_fingerprint, options_fingerprint, state })
    }
}

/// Strips and validates the common `magic ∥ version … fnv64` envelope;
/// returns the body between the version byte and the checksum.
fn check_envelope<'a>(bytes: &'a [u8], magic: &[u8; 4]) -> Result<&'a [u8], CodecError> {
    if bytes.len() < magic.len() + 1 + 8 {
        return Err(CodecError::Wire(WireError::Truncated { at: bytes.len() }));
    }
    if &bytes[..4] != magic {
        return Err(CodecError::BadMagic);
    }
    let version = bytes[4];
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let content = &bytes[..bytes.len() - 8];
    let found = u64::from_le_bytes(
        bytes[bytes.len() - 8..].try_into().map_err(|_| WireError::Truncated { at: bytes.len() })?,
    );
    let expected = fnv1a(wire::FNV_OFFSET, content);
    if expected != found {
        return Err(CodecError::Checksum { expected, found });
    }
    Ok(&content[5..])
}

// ---------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------

fn category_tag(c: Category) -> u8 {
    match c {
        Category::A => 0,
        Category::B => 1,
        Category::C => 2,
        Category::D => 3,
        Category::E => 4,
    }
}

fn category_from(tag: u8) -> Result<Category, CodecError> {
    Ok(match tag {
        0 => Category::A,
        1 => Category::B,
        2 => Category::C,
        3 => Category::D,
        4 => Category::E,
        tag => return Err(CodecError::BadTag { what: "category", tag }),
    })
}

fn ptype_tag(p: PropertyType) -> u8 {
    match p {
        PropertyType::ErrorDetection => 0,
        PropertyType::Soundness => 1,
        PropertyType::OutputIntegrity => 2,
        PropertyType::Other => 3,
    }
}

fn ptype_from(tag: u8) -> Result<PropertyType, CodecError> {
    Ok(match tag {
        0 => PropertyType::ErrorDetection,
        1 => PropertyType::Soundness,
        2 => PropertyType::OutputIntegrity,
        3 => PropertyType::Other,
        tag => return Err(CodecError::BadTag { what: "property type", tag }),
    })
}

/// Serializes a completed [`PropertyRecord`] for a journal `done` line
/// (same envelope discipline as [`CheckpointFile`]: magic, version,
/// trailing checksum).
pub fn encode_record(record: &PropertyRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(FORMAT_VERSION);
    put_string(&mut out, &record.module);
    out.push(category_tag(record.category));
    put_string(&mut out, &record.vunit);
    put_string(&mut out, &record.label);
    out.push(ptype_tag(record.ptype));
    put_verdict(&mut out, &record.verdict);
    put_stats(&mut out, &record.stats);
    let micros = u64::try_from(record.duration.as_micros()).unwrap_or(u64::MAX);
    put_varint(&mut out, micros);
    let checksum = fnv1a(wire::FNV_OFFSET, &out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a journal `done` record.
pub fn decode_record(bytes: &[u8]) -> Result<PropertyRecord, CodecError> {
    let body = check_envelope(bytes, &RECORD_MAGIC)?;
    let mut r = Reader::new(body);
    let module = r.string("module")?;
    let category = category_from(r.byte()?)?;
    let vunit = r.string("vunit")?;
    let label = r.string("label")?;
    let ptype = ptype_from(r.byte()?)?;
    let verdict = get_verdict(&mut r)?;
    let stats = get_stats(&mut r)?;
    let duration = Duration::from_micros(r.varint()?);
    r.expect_end()?;
    Ok(PropertyRecord { module, category, vunit, label, ptype, verdict, stats, duration })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> PersistedState {
        PersistedState::Portfolio(Box::new(RunCheckpoint {
            bad_index: 1,
            slot: 0,
            state: EngineCheckpoint::Bmc { next_depth: 7 },
            stats: CheckStats {
                sat_conflicts: 42,
                events: vec![EngineEvent {
                    bad: "b0".into(),
                    engine: EngineId::Bmc,
                    outcome: EventOutcome::Suspended,
                    resources: EventResources {
                        sat_conflicts: 42,
                        bdd_allocated: 0,
                        bdd_peak_live: 0,
                        rounds: 7,
                    },
                }],
                ..CheckStats::default()
            },
            reasons: vec!["bmc: suspended".into()],
        }))
    }

    fn roundtrip(state: PersistedState) -> CheckpointFile {
        let file = CheckpointFile { aig_fingerprint: 0xa1, options_fingerprint: 0xb2, state };
        let bytes = file.encode();
        CheckpointFile::decode(&bytes, Some((0xa1, 0xb2))).unwrap() // lint: allow
    }

    #[test]
    fn portfolio_checkpoint_round_trips() {
        let back = roundtrip(sample_state());
        let PersistedState::Portfolio(ck) = back.state else {
            panic!("wrong variant") // lint: allow
        };
        assert_eq!(ck.bad_index, 1);
        assert_eq!(ck.state, EngineCheckpoint::Bmc { next_depth: 7 });
        assert_eq!(ck.stats.sat_conflicts, 42);
        assert_eq!(ck.stats.events.len(), 1);
        assert_eq!(ck.reasons, vec!["bmc: suspended".to_owned()]);
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let file = CheckpointFile {
            aig_fingerprint: 1,
            options_fingerprint: 2,
            state: sample_state(),
        };
        let mut bytes = file.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            CheckpointFile::decode(&bytes, None),
            Err(CodecError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let file = CheckpointFile {
            aig_fingerprint: 1,
            options_fingerprint: 2,
            state: sample_state(),
        };
        let bytes = file.encode();
        for cut in [0, 4, 5, 12, bytes.len() - 9, bytes.len() - 1] {
            let err = CheckpointFile::decode(&bytes[..cut], None);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn fingerprint_mismatches_are_distinguished() {
        let file = CheckpointFile {
            aig_fingerprint: 0xaaaa,
            options_fingerprint: 0xbbbb,
            state: sample_state(),
        };
        let bytes = file.encode();
        assert!(matches!(
            CheckpointFile::decode(&bytes, Some((0xdead, 0xbbbb))),
            Err(CodecError::AigFingerprint { .. })
        ));
        assert!(matches!(
            CheckpointFile::decode(&bytes, Some((0xaaaa, 0xdead))),
            Err(CodecError::OptionsFingerprint { .. })
        ));
    }

    #[test]
    fn verdicts_round_trip_including_traces() {
        for verdict in [
            Verdict::Proved { engine: "bdd-umc" },
            Verdict::Proved { engine: intern_engine_name("some-exotic-engine") },
            Verdict::Falsified(Trace {
                inputs: vec![vec![true, false, true], vec![false; 9], vec![]],
                bad_index: 3,
            }),
            Verdict::ResourceOut { reason: "all engines exhausted".into() },
        ] {
            let mut out = Vec::new();
            put_verdict(&mut out, &verdict);
            let mut r = Reader::new(&out);
            let back = get_verdict(&mut r).unwrap(); // lint: allow
            r.expect_end().unwrap(); // lint: allow
            assert_eq!(back, verdict);
        }
    }

    #[test]
    fn record_round_trips() {
        let record = PropertyRecord {
            module: "csr_file_0".into(),
            category: Category::C,
            vunit: "v_csr".into(),
            label: "parity_detects".into(),
            ptype: PropertyType::ErrorDetection,
            verdict: Verdict::Proved { engine: "bmc-induction" },
            stats: CheckStats { iterations: 5, ..CheckStats::default() },
            duration: Duration::from_micros(12_345),
        };
        let bytes = encode_record(&record);
        let back = decode_record(&bytes).unwrap(); // lint: allow
        assert_eq!(back.module, record.module);
        assert_eq!(back.category, record.category);
        assert_eq!(back.ptype, record.ptype);
        assert_eq!(back.verdict, record.verdict);
        assert_eq!(back.stats, record.stats);
        assert_eq!(back.duration, record.duration);
    }

    #[test]
    fn record_magic_is_not_a_checkpoint() {
        let record = PropertyRecord {
            module: "m".into(),
            category: Category::A,
            vunit: "v".into(),
            label: "l".into(),
            ptype: PropertyType::Other,
            verdict: Verdict::ResourceOut { reason: "r".into() },
            stats: CheckStats::default(),
            duration: Duration::ZERO,
        };
        let bytes = encode_record(&record);
        assert!(matches!(CheckpointFile::decode(&bytes, None), Err(CodecError::BadMagic)));
    }
}
