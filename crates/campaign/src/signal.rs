//! Process signals without libc: a SIGTERM/SIGINT flag the daemon and
//! its workers poll to flush in-flight checkpoints before exit, a
//! `kill` wrapper for forwarding termination to worker shards, and
//! `/proc`-based liveness probing for orphan reaping.
//!
//! This is the only module in the workspace that touches `unsafe`: two
//! raw libc prototypes (`signal`, `kill`), each wrapped in a safe,
//! infallible API. The handler itself does nothing but store into a
//! process-global atomic — the actual flushing happens at the next
//! cooperative cancellation point (the engines' [`Budget`] ticks),
//! which is the same suspension machinery every other interruption
//! uses.
//!
//! [`Budget`]: veridic_mc::Budget

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide "a termination signal arrived" flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// POSIX signal numbers (Linux values).
const SIGINT: i32 = 2;
/// See [`SIGINT`].
pub(crate) const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod libc_shim {
    //! The two libc entry points the campaign service needs, declared
    //! raw: the offline build carries no `libc` crate, and the
    //! workspace otherwise forbids `unsafe`.

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler);`
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        /// `int kill(pid_t pid, int sig);`
        fn kill(pid: i32, sig: i32) -> i32;
    }

    /// Registers `handler` for `signum`; best-effort (the return value
    /// is the previous handler, which we never restore).
    pub(super) fn install(signum: i32, handler: extern "C" fn(i32)) {
        // SAFETY: `signal` is async-signal-safe to call from normal
        // context; the handler we install only performs an atomic
        // store, which is async-signal-safe too.
        unsafe {
            signal(signum, handler);
        }
    }

    /// Sends `sig` to `pid`; returns true on success.
    pub(super) fn send(pid: u32, sig: i32) -> bool {
        let pid = match i32::try_from(pid) {
            Ok(p) => p,
            Err(_) => return false,
        };
        // SAFETY: `kill` has no memory-safety preconditions; an invalid
        // pid just returns -1 with ESRCH.
        unsafe { kill(pid, sig) == 0 }
    }
}

/// The installed handler: record the request and return. Everything
/// else (cancelling engine budgets, persisting checkpoints, exiting)
/// happens at the next poll of [`shutdown_requested`].
extern "C" fn on_terminate(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handler that arms
/// [`shutdown_requested`]. Idempotent; call early in any process that
/// owns in-flight checkpoints (the daemon and every worker do).
pub fn install_shutdown_handler() {
    libc_shim::install(SIGTERM, on_terminate);
    libc_shim::install(SIGINT, on_terminate);
}

/// True once SIGTERM or SIGINT has been received (or
/// [`request_shutdown`] called). Never resets.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Arms [`shutdown_requested`] from ordinary code — used by tests and
/// by the daemon to wind down its workers' watcher threads without an
/// actual signal delivery.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Sends SIGTERM to `pid` (the graceful worker stop: the worker's
/// handler flushes its in-flight checkpoint and exits). Returns false
/// if the process no longer exists.
pub fn send_sigterm(pid: u32) -> bool {
    libc_shim::send(pid, SIGTERM)
}

/// True if a process with this pid currently exists, by `/proc` probe.
/// This is how journal recovery tells a live `Running` entry (another
/// daemon's worker still computing) from an orphan left by a crash.
pub fn pid_alive(pid: u32) -> bool {
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_pid_is_alive_and_absurd_pid_is_not() {
        assert!(pid_alive(std::process::id()));
        // Linux pids are bounded by /proc/sys/kernel/pid_max (< 2^22 by
        // default, always < 2^31); this one cannot exist.
        assert!(!pid_alive(u32::MAX - 1));
    }

    #[test]
    fn request_shutdown_arms_the_flag() {
        // Deliberately not testing signal delivery in-process (it would
        // race other tests); the flag path is what the daemon polls.
        // (No pre-assert on the flag: a sibling test may already have
        // armed it.)
        request_shutdown();
        assert!(shutdown_requested());
    }
}
