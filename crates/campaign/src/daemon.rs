//! The campaign daemon: a crash-recoverable verification service over
//! one campaign directory.
//!
//! [`submit`] lays the directory out (spec, one `pending` journal per
//! property, module-preparation errors); [`run`] is the daemon proper:
//! it scans every journal, reaps `running` entries whose pid is dead
//! (orphans of a killed daemon), shards the pending properties across
//! worker **processes** (`current_exe() --worker`, frame protocol over
//! pipes), streams every finished [`PropertyRecord`] to
//! `results.ndjson` as it arrives, and renders the final Table 2 +
//! summary line when the last journal reads `done`.
//!
//! Crash recovery is nothing special-cased: the journal state machine
//! and the slice-aligned checkpoints (see [`crate::worker`]) mean a
//! `kill -9`'d daemon restarted with [`run`] finishes the campaign
//! with verdicts — and therefore a Table 2 — byte-identical to an
//! uninterrupted run. A SIGTERM'd daemon additionally flushes every
//! in-flight checkpoint before exiting (forwarded to the workers, who
//! suspend at the next cooperative engine tick).

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use veridic_chipgen::Chip;
use veridic_core::flow::{CampaignReport, PropertyRecord};

use crate::journal::{from_hex, JobState};
use crate::signal;
use crate::spec::{CampaignSpec, SpecError};
use crate::store::write_atomic;
use crate::worker::{enumerate_jobs, read_frame, write_frame, CampaignDir};

/// A campaign service failure.
#[derive(Debug)]
pub enum DaemonError {
    /// Filesystem or pipe failure.
    Io(io::Error),
    /// The campaign spec is missing or malformed.
    Spec(SpecError),
    /// [`submit`] refused to overwrite an existing campaign.
    AlreadyExists,
    /// Another daemon is alive on this campaign directory.
    AlreadyRunning {
        /// The live daemon's pid.
        pid: u32,
    },
    /// The directory holds no submitted campaign.
    NotSubmitted,
    /// Worker processes kept dying; the campaign cannot make progress.
    WorkersFailing(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "campaign I/O error: {e}"),
            DaemonError::Spec(e) => write!(f, "campaign spec error: {e}"),
            DaemonError::AlreadyExists => write!(f, "campaign directory already submitted"),
            DaemonError::AlreadyRunning { pid } => {
                write!(f, "a daemon (pid {pid}) is already running this campaign")
            }
            DaemonError::NotSubmitted => write!(f, "no campaign submitted here (missing spec.txt)"),
            DaemonError::WorkersFailing(msg) => write!(f, "workers failing repeatedly: {msg}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DaemonError {
    fn from(e: io::Error) -> Self {
        DaemonError::Io(e)
    }
}

/// What [`submit`] created.
#[derive(Clone, Copy, Debug)]
pub struct SubmitSummary {
    /// Properties enqueued (one journal each).
    pub jobs: usize,
    /// Modules that failed preparation (recorded, not enqueued).
    pub module_errors: usize,
}

/// Lays out a campaign directory: writes `spec.txt`, enumerates the
/// chip's properties, creates one `pending` journal per property and
/// records module-preparation errors. Refuses to overwrite an existing
/// campaign (journals are the source of truth for completed work).
pub fn submit(root: &Path, spec: &CampaignSpec) -> Result<SubmitSummary, DaemonError> {
    let dir = CampaignDir::new(root);
    if dir.spec_path().exists() {
        return Err(DaemonError::AlreadyExists);
    }
    fs::create_dir_all(dir.jobs_dir())?;
    fs::create_dir_all(dir.ckpt_dir())?;
    write_atomic(&dir.spec_path(), spec.to_text().as_bytes())?;
    let (props, errors) = enumerate_jobs(spec);
    for id in 0..props.len() {
        dir.journal(id).mark_pending()?;
    }
    let mut errors_text = String::new();
    for (module, reason) in &errors {
        let reason = reason.replace(['\t', '\n'], " ");
        errors_text.push_str(module);
        errors_text.push('\t');
        errors_text.push_str(&reason);
        errors_text.push('\n');
    }
    write_atomic(&dir.errors_path(), errors_text.as_bytes())?;
    Ok(SubmitSummary { jobs: props.len(), module_errors: errors.len() })
}

/// A point-in-time view of a campaign directory.
#[derive(Clone, Debug)]
pub struct StatusSummary {
    /// Total journaled properties.
    pub jobs: usize,
    /// Jobs never started (or orphaned by a crashed daemon).
    pub pending: usize,
    /// Jobs claimed by a live worker right now.
    pub running: usize,
    /// Jobs with a journaled verdict.
    pub done: usize,
    /// The live daemon's pid, if one holds the lock.
    pub daemon_pid: Option<u32>,
}

/// Lists the journal ids present in the campaign, ascending.
fn job_ids(dir: &CampaignDir) -> Result<Vec<usize>, DaemonError> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir.jobs_dir()).map_err(|_| DaemonError::NotSubmitted)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name.strip_suffix(".journal").and_then(|s| s.parse().ok()) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

fn read_pid_lock(dir: &CampaignDir) -> Option<u32> {
    let text = fs::read_to_string(dir.pid_path()).ok()?;
    let pid: u32 = text.trim().parse().ok()?;
    signal::pid_alive(pid).then_some(pid)
}

/// Summarizes a campaign directory without touching its state.
pub fn status(root: &Path) -> Result<StatusSummary, DaemonError> {
    let dir = CampaignDir::new(root);
    if !dir.spec_path().exists() {
        return Err(DaemonError::NotSubmitted);
    }
    let ids = job_ids(&dir)?;
    let mut summary = StatusSummary {
        jobs: ids.len(),
        pending: 0,
        running: 0,
        done: 0,
        daemon_pid: read_pid_lock(&dir),
    };
    for id in ids {
        match dir.journal(id).load().effective() {
            JobState::Pending => summary.pending += 1,
            JobState::Running { .. } => summary.running += 1,
            JobState::Done(_) => summary.done += 1,
        }
    }
    Ok(summary)
}

/// How a daemon run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Every property concluded; the final report (also rendered to
    /// `table2.txt` and summarized in `results.ndjson`).
    Completed(Box<CampaignReport>),
    /// A termination signal arrived; checkpoints are flushed and the
    /// campaign resumes from the journals on the next [`run`].
    Interrupted {
        /// Jobs with a journaled verdict at exit.
        done: usize,
        /// Total journaled jobs.
        total: usize,
    },
}

/// A message from one worker's reader thread.
enum WorkerMsg {
    Frame(String),
    Exited,
}

/// One worker process under daemon supervision.
struct WorkerSlot {
    child: Child,
    stdin: ChildStdin,
    /// The job the worker is currently running.
    current: Option<usize>,
    /// Whether QUIT was already sent.
    quitting: bool,
    alive: bool,
}

fn spawn_worker(
    root: &Path,
    index: usize,
    tx: &mpsc::Sender<(usize, WorkerMsg)>,
) -> Result<WorkerSlot, DaemonError> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--worker")
        .arg(root)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin missing"))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "worker stdout missing"))?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut stdout = stdout;
        loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => {
                    if tx.send((index, WorkerMsg::Frame(frame))).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send((index, WorkerMsg::Exited));
                    return;
                }
            }
        }
    });
    Ok(WorkerSlot { child, stdin, current: None, quitting: false, alive: true })
}

/// The daemon supervision state, threaded through the message loop.
struct Supervisor {
    pending: Vec<usize>,
    done: BTreeMap<usize, PropertyRecord>,
    job_errors: Vec<(String, String)>,
    workers: Vec<WorkerSlot>,
    respawns_left: usize,
}

impl Supervisor {
    fn in_flight(&self) -> usize {
        self.workers.iter().filter(|w| w.current.is_some()).count()
    }

    fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Hands the next pending job to worker `index`, or QUIT if the
    /// queue is drained.
    fn assign(&mut self, index: usize) -> io::Result<()> {
        let slot = &mut self.workers[index];
        if let Some(id) = self.pending.first().copied() {
            self.pending.remove(0);
            slot.current = Some(id);
            write_frame(&mut slot.stdin, &format!("RUN {id}"))
        } else if !slot.quitting {
            slot.quitting = true;
            write_frame(&mut slot.stdin, "QUIT")
        } else {
            Ok(())
        }
    }
}

/// Appends one line to the NDJSON results stream.
fn append_ndjson(dir: &CampaignDir, line: &str) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(dir.results_path())?;
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")?;
    f.flush()
}

/// Reads the module-preparation errors recorded at submit time.
fn read_module_errors(dir: &CampaignDir) -> Vec<(String, String)> {
    let Ok(text) = fs::read_to_string(dir.errors_path()) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.split_once('\t').map(|(m, r)| (m.to_string(), r.to_string())))
        .collect()
}

/// Runs the campaign in `root` to completion (or until a termination
/// signal): recovers journal state, shards pending properties across
/// `spec.shards` worker processes, streams results, renders the final
/// tables. Idempotent — re-running a completed campaign just re-renders
/// its report from the journals.
pub fn run(root: &Path) -> Result<RunOutcome, DaemonError> {
    signal::install_shutdown_handler();
    let t0 = Instant::now();
    let dir = CampaignDir::new(root);
    let spec_text = fs::read_to_string(dir.spec_path()).map_err(|_| DaemonError::NotSubmitted)?;
    let spec = CampaignSpec::parse(&spec_text).map_err(DaemonError::Spec)?;

    if let Some(pid) = read_pid_lock(&dir) {
        if pid != std::process::id() {
            return Err(DaemonError::AlreadyRunning { pid });
        }
    }
    write_atomic(&dir.pid_path(), std::process::id().to_string().as_bytes())?;

    // Journal recovery: dead `running` pids are orphans and re-queue;
    // their persisted checkpoints make the re-run a resume, not a
    // restart.
    let ids = job_ids(&dir)?;
    let total = ids.len();
    let mut sup = Supervisor {
        pending: Vec::new(),
        done: BTreeMap::new(),
        job_errors: Vec::new(),
        workers: Vec::new(),
        respawns_left: 2 * spec.shards + 4,
    };
    for id in &ids {
        match dir.journal(*id).load().effective() {
            JobState::Done(record) => {
                sup.done.insert(*id, *record);
            }
            JobState::Pending | JobState::Running { .. } => sup.pending.push(*id),
        }
    }

    // Re-baseline the streaming log so it holds exactly the journaled
    // records (a crash can journal a record without its NDJSON line);
    // new completions append after it.
    let mut baseline = String::new();
    for record in sup.done.values() {
        baseline.push_str(&record.to_json());
        baseline.push('\n');
    }
    write_atomic(&dir.results_path(), baseline.as_bytes())?;

    if !sup.pending.is_empty() {
        let shard_count = spec.shards.max(1).min(sup.pending.len());
        let (tx, rx) = mpsc::channel();
        for i in 0..shard_count {
            sup.workers.push(spawn_worker(root, i, &tx)?);
        }

        let interrupted = loop {
            if signal::shutdown_requested() {
                break true;
            }
            if sup.pending.is_empty() && sup.in_flight() == 0 {
                // Drain: ask every live worker to quit, then wait for
                // their reader threads to observe EOF.
                for i in 0..sup.workers.len() {
                    if sup.workers[i].alive && !sup.workers[i].quitting {
                        sup.assign(i)?;
                    }
                }
                if sup.live_workers() == 0 {
                    break false;
                }
            }
            let (index, msg) = match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(m) => m,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break false,
            };
            match msg {
                WorkerMsg::Frame(frame) => {
                    if frame == "READY" {
                        sup.assign(index)?;
                    } else if let Some(rest) = frame.strip_prefix("DONE ") {
                        if let Some((id_text, hex)) = rest.split_once(' ') {
                            let id: usize = id_text.parse().unwrap_or(usize::MAX);
                            if sup.workers[index].current == Some(id) {
                                sup.workers[index].current = None;
                            }
                            match from_hex(hex).and_then(|b| crate::codec::decode_record(&b).ok())
                            {
                                Some(record) => {
                                    append_ndjson(&dir, &record.to_json())?;
                                    sup.done.insert(id, record);
                                }
                                None => sup.job_errors.push((
                                    format!("job-{id}"),
                                    "worker sent an undecodable record".to_string(),
                                )),
                            }
                            sup.assign(index)?;
                        }
                    } else if let Some(rest) = frame.strip_prefix("ERR ") {
                        let (id_text, msg) = rest.split_once(' ').unwrap_or((rest, ""));
                        let id: usize = id_text.parse().unwrap_or(usize::MAX);
                        if sup.workers[index].current == Some(id) {
                            sup.workers[index].current = None;
                        }
                        sup.job_errors.push((format!("job-{id}"), msg.to_string()));
                        sup.assign(index)?;
                    }
                    // CKPT and WARN frames are heartbeats/notices only.
                }
                WorkerMsg::Exited => {
                    let slot = &mut sup.workers[index];
                    slot.alive = false;
                    let _ = slot.child.wait();
                    if let Some(id) = slot.current.take() {
                        if !signal::shutdown_requested() {
                            // The worker died mid-job: re-queue (the
                            // journal's dead running entry makes it a
                            // resume) and replace the worker.
                            sup.pending.insert(0, id);
                            if sup.respawns_left == 0 {
                                return Err(DaemonError::WorkersFailing(format!(
                                    "worker died on job {id} with no respawn budget left"
                                )));
                            }
                            sup.respawns_left -= 1;
                            sup.workers[index] = spawn_worker(root, index, &tx)?;
                        }
                    }
                }
            }
        };

        if interrupted {
            // Graceful wind-down: forward SIGTERM so each worker
            // flushes its in-flight checkpoint, then wait for exits.
            for slot in &mut sup.workers {
                if slot.alive {
                    signal::send_sigterm(slot.child.id());
                }
            }
            for slot in &mut sup.workers {
                if slot.alive {
                    let _ = slot.child.wait();
                }
            }
            fs::remove_file(dir.pid_path()).ok();
            return Ok(RunOutcome::Interrupted { done: sup.done.len(), total });
        }
        for slot in &mut sup.workers {
            let _ = slot.child.wait();
        }
    }

    // Finalize: the journals hold every verdict; render the report.
    let report = CampaignReport {
        records: sup.done.into_values().collect(),
        errors: {
            let mut errors = read_module_errors(&dir);
            errors.append(&mut sup.job_errors);
            errors
        },
        total_time: t0.elapsed(),
    };
    let chip = Chip::generate(&spec.chip_config());
    write_atomic(&dir.table2_path(), report.render_table2(&chip).as_bytes())?;
    append_ndjson(&dir, &report.to_json())?;
    fs::remove_file(dir.pid_path()).ok();
    Ok(RunOutcome::Completed(Box::new(report)))
}
