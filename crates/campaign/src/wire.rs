//! Wire primitives of the checkpoint serializer: LEB128 varints, a
//! bounds-checked byte reader, and the running FNV-1a checksum every
//! persisted artifact ends with.
//!
//! Deliberately tiny and dependency-free: the campaign's durability
//! story must not hinge on a serialization framework the offline build
//! cannot carry. Every integer is a varint (checkpoint node lists are
//! dominated by small slot references, so the common node costs a few
//! bytes, not 12), every length is validated before allocation, and
//! every read is bounds-checked — a truncated or bit-flipped file
//! surfaces as a typed [`WireError`], never a panic.

use std::fmt;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Feeds `bytes` into a running FNV-1a 64 state.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A malformed wire artifact: what went wrong and where.
///
/// Every decoding failure is one of these — the deserializer has no
/// panicking paths, because checkpoints are read back after crashes,
/// which is exactly when the file is most likely to be damaged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value being read was complete.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// A varint ran past 10 bytes (no u64 needs more).
    VarintOverflow {
        /// Byte offset of the varint's first byte.
        at: usize,
    },
    /// A decoded value does not fit the field it was read for.
    Range {
        /// What was being read.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A declared length is implausible for the remaining input (guards
    /// pre-allocation against corrupt headers).
    BadLength {
        /// What was being read.
        what: &'static str,
        /// The declared element count.
        declared: u64,
        /// Remaining input bytes.
        remaining: usize,
    },
    /// Trailing garbage after a complete artifact.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string's first byte.
        at: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { at } => write!(f, "input truncated at byte {at}"),
            WireError::VarintOverflow { at } => write!(f, "varint overflow at byte {at}"),
            WireError::Range { what, value } => write!(f, "{what}: value {value} out of range"),
            WireError::BadLength { what, declared, remaining } => {
                write!(f, "{what}: declared length {declared} exceeds {remaining} remaining bytes")
            }
            WireError::TrailingBytes { extra } => write!(f, "{extra} trailing byte(s)"),
            WireError::BadUtf8 { at } => write!(f, "invalid UTF-8 at byte {at}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit
/// = continuation).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked cursor over a byte slice; every accessor returns a
/// typed [`WireError`] instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless the input is
    /// fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes { extra: self.remaining() })
        }
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut v: u64 = 0;
        for shift in 0..10 {
            let b = self.byte()?;
            let payload = u64::from(b & 0x7f);
            if shift == 9 && payload > 1 {
                return Err(WireError::VarintOverflow { at: start });
            }
            v |= payload << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow { at: start })
    }

    /// Reads a varint and narrows it to `u32`.
    pub fn varint_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| WireError::Range { what, value: v })
    }

    /// Reads a varint and narrows it to `usize`.
    pub fn varint_usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| WireError::Range { what, value: v })
    }

    /// Reads an element count that must be plausible for the remaining
    /// input: each element occupies at least `min_element_bytes` bytes,
    /// so a corrupt header cannot trigger a huge pre-allocation.
    pub fn length(&mut self, what: &'static str, min_element_bytes: usize) -> Result<usize, WireError> {
        let v = self.varint()?;
        let fits = usize::try_from(v).ok().and_then(|n| n.checked_mul(min_element_bytes.max(1)));
        match fits {
            Some(total) if total <= self.remaining() => Ok(v as usize),
            _ => Err(WireError::BadLength { what, declared: v, remaining: self.remaining() }),
        }
    }

    /// Reads a bool encoded as one byte (`0`/`1`).
    pub fn flag(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Range { what, value: u64::from(other) }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.length(what, 1)?;
        let at = self.pos;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8 { at })
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a bool as one byte.
pub fn put_flag(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v); // lint: allow
            r.expect_end().unwrap(); // lint: allow
        }
    }

    #[test]
    fn truncated_varint_is_typed() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.varint(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn varint_overflow_is_typed() {
        let buf = [0xff; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.varint(), Err(WireError::VarintOverflow { .. })));
    }

    #[test]
    fn length_guard_rejects_implausible_counts() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.length("nodes", 3), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn string_round_trips_and_rejects_bad_utf8() {
        let mut buf = Vec::new();
        put_string(&mut buf, "héllo/…");
        let mut r = Reader::new(&buf);
        assert_eq!(r.string("s").unwrap(), "héllo/…"); // lint: allow
        let bad = [2u8, 0xff, 0xfe];
        let mut r = Reader::new(&bad);
        assert!(matches!(r.string("s"), Err(WireError::BadUtf8 { .. })));
    }
}
