//! The campaign spec: what a campaign directory verifies and how.
//!
//! Stored as `spec.txt` at the root of the campaign directory in a
//! line-oriented `key value` format (human-diffable, no parser
//! dependencies). The spec is written once at submit time and read by
//! every daemon restart and worker process — it is the single source of
//! truth that makes a resumed campaign regenerate the *same* chip,
//! enumerate the *same* property list in the *same* order, and run
//! every engine under the *same* options, which is what the
//! byte-identical-Table-2 recovery guarantee rests on.

use std::fmt;

use veridic_chipgen::{ChipConfig, Scale};
use veridic_mc::CheckOptions;

/// Everything a campaign run is parameterized by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Chip scale (`full` reproduces the paper census, `small` the test
    /// chip).
    pub scale: Scale,
    /// Seed the Table 3 bugs.
    pub with_bugs: bool,
    /// Worker **processes** to shard properties across (≥ 1).
    pub shards: usize,
    /// Budget rounds per scheduler slice; checkpoints are persisted at
    /// slice boundaries.
    pub slice_rounds: u64,
    /// Use the adaptive engine scheduler instead of the default
    /// cascade.
    pub adaptive: bool,
    /// Engine budgets and selection.
    pub check: CheckOptions,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            scale: Scale::Small,
            with_bugs: false,
            shards: 2,
            slice_rounds: 16,
            adaptive: false,
            check: CheckOptions::default(),
        }
    }
}

/// A malformed `spec.txt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The first line is not the expected header.
    BadHeader,
    /// A line is not `key value`.
    BadLine(String),
    /// A value failed to parse for its key.
    BadValue {
        /// The key.
        key: String,
        /// The unparseable value.
        value: String,
    },
    /// An unknown key (specs are closed-world: an unknown key means a
    /// newer writer, and silently ignoring it could change semantics).
    UnknownKey(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadHeader => write!(f, "not a campaign spec (bad header)"),
            SpecError::BadLine(line) => write!(f, "malformed spec line: {line:?}"),
            SpecError::BadValue { key, value } => {
                write!(f, "bad value {value:?} for spec key {key:?}")
            }
            SpecError::UnknownKey(key) => write!(f, "unknown spec key {key:?}"),
        }
    }
}

impl std::error::Error for SpecError {}

const HEADER: &str = "veridic-campaign-spec v1";

impl CampaignSpec {
    /// The chip generation config this spec describes.
    pub fn chip_config(&self) -> ChipConfig {
        ChipConfig { scale: self.scale, with_bugs: self.with_bugs }
    }

    /// Renders the spec as `spec.txt` text (stable key order).
    pub fn to_text(&self) -> String {
        let c = &self.check;
        format!(
            "{HEADER}\n\
             scale {}\n\
             with_bugs {}\n\
             shards {}\n\
             slice_rounds {}\n\
             adaptive {}\n\
             bmc_depth {}\n\
             sat_conflicts {}\n\
             induction_depth {}\n\
             simple_path {}\n\
             bdd_nodes {}\n\
             max_iterations {}\n\
             pobdd_window_vars {}\n\
             pobdd_workers {}\n\
             image_workers {}\n\
             dynamic_reorder {}\n\
             static_order {}\n\
             bdd_only {}\n\
             sat_only {}\n\
             preanalysis {}\n",
            match self.scale {
                Scale::Full => "full",
                Scale::Small => "small",
            },
            self.with_bugs,
            self.shards,
            self.slice_rounds,
            self.adaptive,
            c.bmc_depth,
            c.sat_conflicts,
            c.induction_depth,
            c.simple_path,
            c.bdd_nodes,
            c.max_iterations,
            c.pobdd_window_vars,
            c.pobdd_workers,
            c.image_workers,
            c.dynamic_reorder,
            c.static_order,
            c.bdd_only,
            c.sat_only,
            c.preanalysis,
        )
    }

    /// Parses `spec.txt` text.
    pub fn parse(text: &str) -> Result<CampaignSpec, SpecError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(SpecError::BadHeader);
        }
        let mut spec = CampaignSpec::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once(' ') else {
                return Err(SpecError::BadLine(line.to_string()));
            };
            let bad = || SpecError::BadValue { key: key.to_string(), value: value.to_string() };
            let parse_bool = || match value {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(bad()),
            };
            match key {
                "scale" => {
                    spec.scale = match value {
                        "full" => Scale::Full,
                        "small" => Scale::Small,
                        _ => return Err(bad()),
                    }
                }
                "with_bugs" => spec.with_bugs = parse_bool()?,
                "shards" => spec.shards = value.parse().map_err(|_| bad())?,
                "slice_rounds" => spec.slice_rounds = value.parse().map_err(|_| bad())?,
                "adaptive" => spec.adaptive = parse_bool()?,
                "bmc_depth" => spec.check.bmc_depth = value.parse().map_err(|_| bad())?,
                "sat_conflicts" => spec.check.sat_conflicts = value.parse().map_err(|_| bad())?,
                "induction_depth" => {
                    spec.check.induction_depth = value.parse().map_err(|_| bad())?;
                }
                "simple_path" => spec.check.simple_path = parse_bool()?,
                "bdd_nodes" => spec.check.bdd_nodes = value.parse().map_err(|_| bad())?,
                "max_iterations" => {
                    spec.check.max_iterations = value.parse().map_err(|_| bad())?;
                }
                "pobdd_window_vars" => {
                    spec.check.pobdd_window_vars = value.parse().map_err(|_| bad())?;
                }
                "pobdd_workers" => {
                    spec.check.pobdd_workers = value.parse().map_err(|_| bad())?;
                }
                "image_workers" => {
                    spec.check.image_workers = value.parse().map_err(|_| bad())?;
                }
                "dynamic_reorder" => spec.check.dynamic_reorder = parse_bool()?,
                "static_order" => spec.check.static_order = parse_bool()?,
                "bdd_only" => spec.check.bdd_only = parse_bool()?,
                "sat_only" => spec.check.sat_only = parse_bool()?,
                "preanalysis" => spec.check.preanalysis = parse_bool()?,
                _ => return Err(SpecError::UnknownKey(key.to_string())),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let spec = CampaignSpec {
            scale: Scale::Small,
            with_bugs: true,
            shards: 3,
            slice_rounds: 7,
            adaptive: true,
            check: CheckOptions::tiny_budget(),
        };
        let text = spec.to_text();
        assert_eq!(CampaignSpec::parse(&text), Ok(spec));
    }

    #[test]
    fn default_round_trips_and_errors_are_typed() {
        let spec = CampaignSpec::default();
        assert_eq!(CampaignSpec::parse(&spec.to_text()), Ok(spec));
        assert_eq!(CampaignSpec::parse("nonsense"), Err(SpecError::BadHeader));
        assert_eq!(
            CampaignSpec::parse(&format!("{HEADER}\nshards many")),
            Err(SpecError::BadValue { key: "shards".into(), value: "many".into() })
        );
        assert_eq!(
            CampaignSpec::parse(&format!("{HEADER}\nwarp_factor 9")),
            Err(SpecError::UnknownKey("warp_factor".into()))
        );
    }
}
