//! The worker half of process sharding: `campaignd --worker <dir>`.
//!
//! The daemon spawns `current_exe() --worker <dir>` once per shard and
//! speaks a length-prefixed text protocol over the worker's
//! stdin/stdout (u32-LE frame length, UTF-8 payload):
//!
//! | direction       | frame                | meaning                      |
//! |-----------------|----------------------|------------------------------|
//! | daemon → worker | `RUN <job>`          | check property `<job>`       |
//! | daemon → worker | `QUIT`               | exit after the current frame |
//! | worker → daemon | `READY`              | chip generated, jobs mapped  |
//! | worker → daemon | `CKPT <job>`         | a checkpoint was persisted   |
//! | worker → daemon | `DONE <job> <hex>`   | record, in the journal codec |
//! | worker → daemon | `WARN <job> <msg>`   | notice only (job continues)  |
//! | worker → daemon | `ERR <job> <msg>`    | job failed (bad id, I/O…)    |
//!
//! A job runs in fixed-size budget **slices** (`slice_rounds` from the
//! campaign spec). At every slice boundary the suspended
//! [`RunCheckpoint`](veridic_mc::RunCheckpoint) (or adaptive lane
//! state) is persisted atomically before the next slice starts — so a
//! `kill -9` at any instant loses at most the slice in flight, and the
//! restarted run replays from the last boundary with the same slice
//! grid an uninterrupted run uses. That alignment is what makes the
//! resumed verdict, falsification depth and completed-round count equal
//! to an uninterrupted run's, byte for byte in the final tables.
//!
//! SIGTERM is gentler than `kill -9`: a watcher thread bridges the
//! [`crate::signal`] flag into the slice's
//! [`CancelToken`], the engine suspends at its
//! next cooperative tick, the (mid-slice) checkpoint is flushed, and
//! the worker exits cleanly.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use veridic_chipgen::Chip;
use veridic_core::flow::{module_properties, record_from_result, PreparedProperty, PropertyRecord};
use veridic_mc::{Budget, CancelToken, CheckResult, CheckStats, Portfolio, PortfolioOutcome};

use crate::codec::{encode_record, CheckpointFile, PersistedState};
use crate::journal::{to_hex, Journal};
use crate::scheduler::{AdaptiveScheduler, AdaptiveStep};
use crate::signal;
use crate::spec::CampaignSpec;
use crate::store;

/// Writes one protocol frame: u32-LE length, then UTF-8 payload.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, text: &str) -> io::Result<()> {
    let len = u32::try_from(text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too long"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Reads one protocol frame; `Ok(None)` on clean EOF before a frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 24 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 frame"))
}

/// File layout of a campaign directory.
#[derive(Clone, Debug)]
pub struct CampaignDir {
    /// The directory root.
    pub root: PathBuf,
}

impl CampaignDir {
    /// Wraps `root` (no filesystem access).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CampaignDir { root: root.into() }
    }

    /// `spec.txt` — the campaign spec.
    pub fn spec_path(&self) -> PathBuf {
        self.root.join("spec.txt")
    }

    /// `jobs/` — one journal per property.
    pub fn jobs_dir(&self) -> PathBuf {
        self.root.join("jobs")
    }

    /// `ckpt/` — one checkpoint file per in-flight property.
    pub fn ckpt_dir(&self) -> PathBuf {
        self.root.join("ckpt")
    }

    /// The checkpoint file of job `id`.
    pub fn ckpt_path(&self, id: usize) -> PathBuf {
        self.ckpt_dir().join(format!("{id}.ckpt"))
    }

    /// `errors.txt` — module preparation failures, tab-separated.
    pub fn errors_path(&self) -> PathBuf {
        self.root.join("errors.txt")
    }

    /// `results.ndjson` — the streaming event log.
    pub fn results_path(&self) -> PathBuf {
        self.root.join("results.ndjson")
    }

    /// `table2.txt` — the final Table 2 render.
    pub fn table2_path(&self) -> PathBuf {
        self.root.join("table2.txt")
    }

    /// `daemon.pid` — the single-daemon lock.
    pub fn pid_path(&self) -> PathBuf {
        self.root.join("daemon.pid")
    }

    /// The journal of job `id`.
    pub fn journal(&self, id: usize) -> Journal {
        Journal::for_job(&self.jobs_dir(), id)
    }
}

/// Regenerates the chip of `spec` and flattens every module's prepared
/// properties into the global job list (module order, then assert
/// order) — the indexing contract shared by daemon and workers.
pub fn enumerate_jobs(spec: &CampaignSpec) -> (Vec<PreparedProperty>, Vec<(String, String)>) {
    let chip = Chip::generate(&spec.chip_config());
    let mut props = Vec::new();
    let mut errors = Vec::new();
    for mi in chip.modules() {
        let (mut p, mut e) = module_properties(&chip, mi);
        props.append(&mut p);
        errors.append(&mut e);
    }
    (props, errors)
}

/// Bridges the process-wide shutdown flag into a job's cancel token:
/// a small thread polling [`signal::shutdown_requested`] until the job
/// finishes (`done`) or cancellation fires.
fn spawn_cancel_bridge(token: CancelToken, done: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !done.load(Ordering::Relaxed) {
            if signal::shutdown_requested() {
                token.cancel();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    })
}

/// How a job slice loop ended.
enum JobEnd {
    /// Concluded with a record.
    Done(Box<PropertyRecord>),
    /// Interrupted by shutdown; the checkpoint is on disk.
    Interrupted,
}

/// Runs one property to conclusion (or shutdown) in budget slices,
/// persisting a fingerprint-bound checkpoint at every boundary.
fn run_job(
    dir: &CampaignDir,
    spec: &CampaignSpec,
    prop: &PreparedProperty,
    id: usize,
    out: &mut impl Write,
) -> io::Result<JobEnd> {
    let t0 = Instant::now();
    let aig_fp = prop.aig.fingerprint();
    let opts_fp = spec.check.fingerprint();
    let ckpt_path = dir.ckpt_path(id);
    // A checkpoint left by a previous (killed) daemon resumes the run;
    // damaged or mismatched files are reported and ignored — the job
    // restarts from scratch rather than resuming wrongly.
    let resume = match store::load_checkpoint(&ckpt_path, Some((aig_fp, opts_fp))) {
        Ok(file) => Some(file.state),
        Err(store::LoadError::Io(_)) => None,
        Err(store::LoadError::Codec(e)) => {
            write_frame(out, &format!("WARN {id} stale checkpoint ignored: {e}"))?;
            None
        }
    };

    let token = CancelToken::new();
    let done = Arc::new(AtomicBool::new(false));
    let bridge = spawn_cancel_bridge(token.clone(), Arc::clone(&done));
    let persist = |state: PersistedState, out: &mut dyn Write| -> io::Result<()> {
        let file = CheckpointFile {
            aig_fingerprint: aig_fp,
            options_fingerprint: opts_fp,
            state,
        };
        store::save_checkpoint(&ckpt_path, &file)?;
        write_frame(out, &format!("CKPT {id}"))
    };

    let result: Result<CheckResult, ()> = if spec.adaptive {
        let scheduler = AdaptiveScheduler::new(spec.slice_rounds);
        let mut state = match resume {
            Some(PersistedState::Adaptive(ck)) => ck,
            // A portfolio checkpoint under an adaptive spec cannot
            // happen with matching option fingerprints unless the spec
            // file was hand-edited; restart cleanly.
            _ => scheduler.start(&prop.aig, prop.bad_index, &spec.check),
        };
        loop {
            match scheduler.step(&prop.aig, &spec.check, state, Some(&token)) {
                AdaptiveStep::Continue(next) => {
                    persist(PersistedState::Adaptive(next.clone()), out)?;
                    if signal::shutdown_requested() {
                        break Err(());
                    }
                    state = next;
                }
                AdaptiveStep::Done(result) => break Ok(result),
            }
        }
    } else {
        let portfolio = Portfolio::default();
        let slice = || Budget::rounds(spec.slice_rounds.max(1)).with_cancel(&token);
        let mut outcome = match resume {
            Some(PersistedState::Portfolio(ck)) => {
                portfolio.resume_bad_with_budget(&prop.aig, &spec.check, *ck, &mut slice())
            }
            _ => portfolio.check_bad_with_budget(
                &prop.aig,
                prop.bad_index,
                &spec.check,
                CheckStats::default(),
                &mut slice(),
            ),
        };
        loop {
            match outcome {
                PortfolioOutcome::Done(result) => break Ok(result),
                PortfolioOutcome::Suspended(ck) => {
                    persist(PersistedState::Portfolio(Box::new(ck.clone())), out)?;
                    if signal::shutdown_requested() {
                        break Err(());
                    }
                    outcome =
                        portfolio.resume_bad_with_budget(&prop.aig, &spec.check, ck, &mut slice());
                }
            }
        }
    };
    done.store(true, Ordering::Relaxed);
    let _ = bridge.join();

    match result {
        Ok(result) => {
            let record = record_from_result(prop, result, t0.elapsed());
            Ok(JobEnd::Done(Box::new(record)))
        }
        Err(()) => Ok(JobEnd::Interrupted),
    }
}

/// The worker main loop; returns the process exit code.
///
/// Speaks the frame protocol on this process's stdin/stdout, so the
/// worker must write nothing else to stdout.
pub fn run_worker(root: &Path) -> i32 {
    signal::install_shutdown_handler();
    let dir = CampaignDir::new(root);
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();

    let spec_text = match std::fs::read_to_string(dir.spec_path()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaignd worker: cannot read spec: {e}");
            return 2;
        }
    };
    let spec = match CampaignSpec::parse(&spec_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaignd worker: bad spec: {e}");
            return 2;
        }
    };
    let (props, _errors) = enumerate_jobs(&spec);
    if write_frame(&mut output, "READY").is_err() {
        return 2;
    }

    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(f)) => f,
            Ok(None) => return 0,
            Err(e) => {
                eprintln!("campaignd worker: protocol error: {e}");
                return 2;
            }
        };
        if frame == "QUIT" {
            return 0;
        }
        let Some(id) = frame.strip_prefix("RUN ").and_then(|s| s.parse::<usize>().ok()) else {
            eprintln!("campaignd worker: unknown frame {frame:?}");
            return 2;
        };
        let Some(prop) = props.get(id) else {
            let _ = write_frame(&mut output, &format!("ERR {id} no such job"));
            continue;
        };
        let journal = dir.journal(id);
        let claim = journal.mark_running(std::process::id());
        let outcome = claim.and_then(|()| run_job(&dir, &spec, prop, id, &mut output));
        match outcome {
            Ok(JobEnd::Done(record)) => {
                if let Err(e) = journal.mark_done(&record) {
                    let _ = write_frame(&mut output, &format!("ERR {id} journal write: {e}"));
                    continue;
                }
                // The journal's done line owns the result now; the
                // checkpoint is scratch state and can go.
                std::fs::remove_file(dir.ckpt_path(id)).ok();
                let msg = format!("DONE {id} {}", to_hex(&encode_record(&record)));
                if write_frame(&mut output, &msg).is_err() {
                    return 2;
                }
            }
            Ok(JobEnd::Interrupted) => return 0,
            Err(e) => {
                let _ = write_frame(&mut output, &format!("ERR {id} {e}"));
            }
        }
        if signal::shutdown_requested() {
            return 0;
        }
    }
}

/// The self-exec hook: if this process was launched as
/// `<exe> --worker <campaign-dir>`, runs the worker loop and returns
/// its exit code; `None` otherwise. Every binary that can host a
/// campaign daemon (`campaignd`, `campaign_ctl`) must call this first,
/// because the daemon shards by re-executing `current_exe()`.
pub fn maybe_run_worker() -> Option<i32> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, dir] if flag == "--worker" => Some(run_worker(Path::new(dir))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "RUN 42").unwrap(); // lint: allow
        write_frame(&mut buf, "").unwrap(); // lint: allow
        write_frame(&mut buf, "DONE 42 deadbeef").unwrap(); // lint: allow
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("RUN 42")); // lint: allow
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("")); // lint: allow
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("DONE 42 deadbeef")); // lint: allow
        assert_eq!(read_frame(&mut r).unwrap(), None); // lint: allow
    }

    #[test]
    fn torn_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "READY").unwrap(); // lint: allow
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err(), "mid-frame EOF must error");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::from((1u32 << 30).to_le_bytes());
        buf.extend_from_slice(b"xx");
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }
}
