//! The adaptive engine scheduler for daemon runs.
//!
//! The default portfolio is a fixed cascade: each engine runs to its
//! own limits before the next starts. That is the right default for a
//! single interactive check (and it stays byte-for-byte untouched when
//! the campaign spec's `adaptive` flag is off — daemon workers then
//! call the ordinary [`Portfolio`] cascade), but a campaign daemon
//! holding hundreds of properties can afford to *time-slice*: run every
//! enabled engine a slice of budget rounds, watch which one's progress
//! cursor actually moved, and re-budget the next round toward it.
//!
//! The scheduler is built entirely from the existing suspension
//! machinery — each lane is a single-engine [`Portfolio`] driven
//! through [`Portfolio::check_bad_with_budget`] /
//! [`Portfolio::resume_bad_with_budget`], so a lane's in-flight state
//! is an ordinary [`RunCheckpoint`] and the whole scheduler state
//! ([`AdaptiveCheckpoint`]) persists through
//! [`crate::codec::CheckpointFile`] like any other checkpoint.
//!
//! Determinism: one [`AdaptiveScheduler::step`] call runs exactly one
//! lane slice, and every input to the grant computation (per-lane
//! progress cursors, the round cursor, granted budgets) lives inside
//! the checkpoint. A run killed after slice *n* and resumed replays
//! slice *n + 1* with the same grants the uninterrupted run used —
//! which is what the crash-recovery test pins.

use veridic_aig::Aig;
use veridic_mc::{
    BddUmcEngine, BmcEngine, Budget, CancelToken, CheckOptions, CheckResult, CheckStats, Engine,
    EngineCheckpoint, EngineId, InductionEngine, PobddEngine, PortfolioOutcome, Portfolio,
    RunCheckpoint, Verdict,
};

/// Budget multiplier for the lane whose progress cursor advanced the
/// most in the previous round.
pub const PROGRESS_BOOST: u64 = 4;

/// Where one engine lane stands.
#[derive(Clone, Debug)]
pub enum LaneStatus {
    /// Not yet run; the first slice starts the engine from scratch.
    Fresh,
    /// Suspended mid-run with resumable state.
    Suspended(RunCheckpoint),
    /// The engine concluded nothing and is out of the race; its
    /// statistics are kept for the final merge.
    Retired {
        /// The engine's own account of what ran out.
        reason: String,
        /// Statistics accumulated over the lane's slices.
        stats: CheckStats,
    },
}

/// One engine lane of an adaptive run.
#[derive(Clone, Debug)]
pub struct LaneCheckpoint {
    /// The lane's engine.
    pub engine: EngineId,
    /// Budget rounds granted for the current scheduling round.
    pub granted: u64,
    /// The lane's progress score at the end of the previous scheduling
    /// round; the grant computation budgets by the delta against it.
    pub prev_progress: u64,
    /// Where the lane stands.
    pub status: LaneStatus,
}

/// The complete, persistable state of one property's adaptive run.
#[derive(Clone, Debug)]
pub struct AdaptiveCheckpoint {
    /// Index of the property's bad output.
    pub bad_index: usize,
    /// Index of the next lane to slice in the current round.
    pub cursor: usize,
    /// The engine lanes, in the default cascade's order.
    pub lanes: Vec<LaneCheckpoint>,
}

/// Result of one [`AdaptiveScheduler::step`].
#[derive(Debug)]
pub enum AdaptiveStep {
    /// The run continues; persist this state and step again.
    Continue(AdaptiveCheckpoint),
    /// A lane concluded (or every lane retired); statistics are merged
    /// across lanes.
    Done(CheckResult),
}

/// The slice-and-rebudget scheduler. Stateless itself — all run state
/// lives in the [`AdaptiveCheckpoint`] so it can be persisted between
/// any two steps.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveScheduler {
    /// Budget rounds per unboosted slice.
    pub slice_rounds: u64,
}

/// The built-in engine for a lane id; `None` for custom ids (which the
/// scheduler never creates — they can only arrive via a tampered
/// checkpoint, and the lane is then retired, not trusted).
fn builtin_engine(id: EngineId) -> Option<Box<dyn Engine>> {
    match id {
        EngineId::Bmc => Some(Box::new(BmcEngine)),
        EngineId::Induction => Some(Box::new(InductionEngine)),
        EngineId::BddUmc => Some(Box::new(BddUmcEngine)),
        EngineId::PobddUmc => Some(Box::new(PobddEngine)),
        EngineId::Custom(_) => None,
    }
}

/// A lane's scalar progress score: the engine's progress cursor,
/// sub-weighted for reachability lanes by how many nodes the frontier
/// delta is still shipping (a growing frontier is an engine still
/// discovering states even when its depth ticks slowly).
fn lane_score(status: &LaneStatus) -> u64 {
    match status {
        LaneStatus::Suspended(ck) => {
            let frontier = match &ck.state {
                EngineCheckpoint::Reach(r) => (r.frontier_nodes() as u64).min(999_999),
                _ => 0,
            };
            ck.state.progress() * 1_000_000 + frontier
        }
        LaneStatus::Fresh | LaneStatus::Retired { .. } => 0,
    }
}

fn is_active(lane: &LaneCheckpoint) -> bool {
    !matches!(lane.status, LaneStatus::Retired { .. })
}

impl AdaptiveScheduler {
    /// A scheduler slicing `slice_rounds` budget rounds at a time
    /// (clamped to ≥ 1).
    pub fn new(slice_rounds: u64) -> Self {
        AdaptiveScheduler { slice_rounds: slice_rounds.max(1) }
    }

    /// The initial state for one property: one lane per enabled engine,
    /// in the default cascade's order (BMC, induction, BDD UMC, POBDD),
    /// each granted one unboosted slice.
    pub fn start(&self, aig: &Aig, bad_index: usize, opts: &CheckOptions) -> AdaptiveCheckpoint {
        let candidates: [Box<dyn Engine>; 4] = [
            Box::new(BmcEngine),
            Box::new(InductionEngine),
            Box::new(BddUmcEngine),
            Box::new(PobddEngine),
        ];
        let lanes = candidates
            .into_iter()
            .filter(|e| e.enabled(opts) && e.supports(aig))
            .map(|e| LaneCheckpoint {
                engine: e.id(),
                granted: self.slice_rounds,
                prev_progress: 0,
                status: LaneStatus::Fresh,
            })
            .collect();
        AdaptiveCheckpoint { bad_index, cursor: 0, lanes }
    }

    /// Runs exactly one lane slice and returns either the advanced
    /// state (persist it, step again) or the merged conclusion.
    ///
    /// `cancel` is threaded into the slice's budget, so a SIGTERM
    /// arriving mid-slice suspends the lane at its next cooperative
    /// tick and surfaces here as an ordinary `Continue` — the caller
    /// persists the state and exits.
    pub fn step(
        &self,
        aig: &Aig,
        opts: &CheckOptions,
        mut ck: AdaptiveCheckpoint,
        cancel: Option<&CancelToken>,
    ) -> AdaptiveStep {
        loop {
            if !ck.lanes.iter().any(is_active) {
                return AdaptiveStep::Done(conclude_all_retired(&ck.lanes));
            }
            let Some(lane_index) =
                (ck.cursor..ck.lanes.len()).find(|i| is_active(&ck.lanes[*i]))
            else {
                // Round complete: re-budget from the progress deltas,
                // then move the cursors up for the next round.
                self.regrant(&mut ck.lanes);
                ck.cursor = 0;
                continue;
            };
            let lane = &mut ck.lanes[lane_index];
            let Some(engine) = builtin_engine(lane.engine) else {
                lane.status = LaneStatus::Retired {
                    reason: "unknown engine lane in checkpoint".into(),
                    stats: CheckStats::default(),
                };
                continue;
            };
            let portfolio = Portfolio::empty().with(engine);
            let mut budget = Budget::rounds(lane.granted.max(1));
            if let Some(token) = cancel {
                budget = budget.with_cancel(token);
            }
            let status = std::mem::replace(&mut lane.status, LaneStatus::Fresh);
            let outcome = match status {
                LaneStatus::Fresh => portfolio.check_bad_with_budget(
                    aig,
                    ck.bad_index,
                    opts,
                    CheckStats::default(),
                    &mut budget,
                ),
                LaneStatus::Suspended(run_ck) => {
                    portfolio.resume_bad_with_budget(aig, opts, run_ck, &mut budget)
                }
                LaneStatus::Retired { .. } => unreachable!("retired lanes are skipped"),
            };
            ck.cursor = lane_index + 1;
            match outcome {
                PortfolioOutcome::Suspended(run_ck) => {
                    ck.lanes[lane_index].status = LaneStatus::Suspended(run_ck);
                    return AdaptiveStep::Continue(ck);
                }
                PortfolioOutcome::Done(result) => match result.verdict {
                    Verdict::ResourceOut { reason } => {
                        ck.lanes[lane_index].status =
                            LaneStatus::Retired { reason, stats: result.stats };
                        if ck.lanes.iter().any(is_active) {
                            return AdaptiveStep::Continue(ck);
                        }
                        return AdaptiveStep::Done(conclude_all_retired(&ck.lanes));
                    }
                    verdict @ (Verdict::Proved { .. } | Verdict::Falsified(_)) => {
                        let stats =
                            merged_stats(&ck.lanes, Some((lane_index, &result.stats)));
                        return AdaptiveStep::Done(CheckResult { verdict, stats });
                    }
                },
            }
        }
    }

    /// End-of-round re-budgeting: every active lane gets one base
    /// slice; the lane whose progress score advanced the most (ties to
    /// the earliest lane) gets [`PROGRESS_BOOST`] slices. Progress
    /// cursors are then rolled forward for the next round's deltas.
    fn regrant(&self, lanes: &mut [LaneCheckpoint]) {
        let deltas: Vec<u64> = lanes
            .iter()
            .map(|lane| lane_score(&lane.status).saturating_sub(lane.prev_progress))
            .collect();
        let best = deltas
            .iter()
            .enumerate()
            .filter(|(i, d)| is_active(&lanes[*i]) && **d > 0)
            .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
            .map(|(i, _)| i);
        for (i, lane) in lanes.iter_mut().enumerate() {
            lane.granted =
                if best == Some(i) { self.slice_rounds * PROGRESS_BOOST } else { self.slice_rounds };
            lane.prev_progress = lane_score(&lane.status);
        }
    }
}

/// The lane's accumulated statistics, if it has any.
fn lane_stats(lane: &LaneCheckpoint) -> Option<&CheckStats> {
    match &lane.status {
        LaneStatus::Fresh => None,
        LaneStatus::Suspended(ck) => Some(&ck.stats),
        LaneStatus::Retired { stats, .. } => Some(stats),
    }
}

/// Merges per-lane statistics into one [`CheckStats`].
///
/// The concluding lane (or lane 0 when everything retired) is the
/// *base*: structural per-run fields — COI sizes, pre-analysis
/// counters (each lane runs its own sweep on the same cone; counting
/// it once keeps campaign totals comparable to cascade runs),
/// iterations, worker tables, reorder-span figures — are taken from it
/// alone. Cross-lane *resource* fields are summed (SAT conflicts, BDD
/// allocation, quota hits, reorder passes) or maxed (peak live nodes),
/// and the event logs are concatenated in lane order so the merged log
/// remains deterministic.
fn merged_stats(lanes: &[LaneCheckpoint], concluding: Option<(usize, &CheckStats)>) -> CheckStats {
    let base_index = concluding.map_or(0, |(i, _)| i);
    let stats_of = |i: usize| -> Option<&CheckStats> {
        match concluding {
            Some((ci, stats)) if ci == i => Some(stats),
            _ => lane_stats(&lanes[i]),
        }
    };
    let mut merged = stats_of(base_index).cloned().unwrap_or_default();
    merged.events.clear();
    for (i, _) in lanes.iter().enumerate() {
        let Some(stats) = stats_of(i) else { continue };
        merged.events.extend(stats.events.iter().cloned());
        if i != base_index {
            merged.sat_conflicts += stats.sat_conflicts;
            merged.bdd_allocated += stats.bdd_allocated;
            merged.bdd_quota_hits += stats.bdd_quota_hits;
            merged.reorders += stats.reorders;
            merged.reorder_nodes_before += stats.reorder_nodes_before;
            merged.reorder_nodes_after += stats.reorder_nodes_after;
            merged.bdd_nodes = merged.bdd_nodes.max(stats.bdd_nodes);
        }
    }
    merged
}

/// The verdict when every lane retired: a `ResourceOut` whose reason
/// names each lane's account, statistics merged with lane 0 as base.
fn conclude_all_retired(lanes: &[LaneCheckpoint]) -> CheckResult {
    let mut accounts = Vec::new();
    for lane in lanes {
        if let LaneStatus::Retired { reason, .. } = &lane.status {
            accounts.push(format!("{}: {}", lane.engine.as_str(), reason));
        }
    }
    let reason = if accounts.is_empty() {
        "no engine lanes were enabled".to_string()
    } else {
        accounts.join("; ")
    };
    CheckResult { verdict: Verdict::ResourceOut { reason }, stats: merged_stats(lanes, None) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_mc::CheckOptions;

    /// An n-bit counter with a bad that fires when it reaches `target`.
    fn counter_aig(bits: u32, target: u64) -> Aig {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = veridic_aig::Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, (_, q))| if target >> i & 1 == 1 { *q } else { !*q })
            .collect();
        let bad = g.and_many(hit);
        g.add_bad(format!("count_is_{target}"), bad);
        g
    }

    #[test]
    fn adaptive_concludes_like_the_cascade_on_a_reachable_bad() {
        let aig = counter_aig(3, 7);
        let opts = CheckOptions::default();
        let scheduler = AdaptiveScheduler::new(2);
        let mut state = scheduler.start(&aig, 0, &opts);
        let result = loop {
            match scheduler.step(&aig, &opts, state, None) {
                AdaptiveStep::Continue(next) => state = next,
                AdaptiveStep::Done(result) => break result,
            }
        };
        assert!(result.verdict.is_falsified(), "counter reaches 7: {:?}", result.verdict);
        let cascade = Portfolio::default().check(&aig, &opts);
        assert_eq!(result.verdict.is_falsified(), cascade.verdict.is_falsified());
    }

    #[test]
    fn adaptive_run_is_deterministic_across_restarts() {
        let aig = counter_aig(3, 5);
        let opts = CheckOptions::default();
        let scheduler = AdaptiveScheduler::new(1);
        // Run A: straight through.
        let mut state = scheduler.start(&aig, 0, &opts);
        let straight = loop {
            match scheduler.step(&aig, &opts, state, None) {
                AdaptiveStep::Continue(next) => state = next,
                AdaptiveStep::Done(result) => break result,
            }
        };
        // Run B: every intermediate state round-trips the codec (the
        // kill-at-every-slice simulation).
        let mut state = scheduler.start(&aig, 0, &opts);
        let restarted = loop {
            match scheduler.step(&aig, &opts, state, None) {
                AdaptiveStep::Continue(next) => {
                    let file = crate::codec::CheckpointFile {
                        aig_fingerprint: aig.fingerprint(),
                        options_fingerprint: opts.fingerprint(),
                        state: crate::codec::PersistedState::Adaptive(next),
                    };
                    let bytes = file.encode();
                    let back = crate::codec::CheckpointFile::decode(
                        &bytes,
                        Some((aig.fingerprint(), opts.fingerprint())),
                    )
                    .unwrap(); // lint: allow
                    let crate::codec::PersistedState::Adaptive(next) = back.state else {
                        panic!("variant changed in flight") // lint: allow
                    };
                    state = next;
                }
                AdaptiveStep::Done(result) => break result,
            }
        };
        assert_eq!(straight.verdict, restarted.verdict);
        assert_eq!(straight.stats, restarted.stats);
    }

    #[test]
    fn all_lanes_retire_to_a_named_resource_out() {
        // An unreachable bad with budgets too small for any proof.
        let aig = counter_aig(3, 7);
        let opts = CheckOptions::builder()
            .bmc_depth(1)
            .induction_depth(0)
            .max_iterations(1)
            .pobdd_window_vars(0)
            .preanalysis(false)
            .build();
        let scheduler = AdaptiveScheduler::new(1);
        let mut state = scheduler.start(&aig, 0, &opts);
        let result = loop {
            match scheduler.step(&aig, &opts, state, None) {
                AdaptiveStep::Continue(next) => state = next,
                AdaptiveStep::Done(result) => break result,
            }
        };
        let Verdict::ResourceOut { reason } = &result.verdict else {
            panic!("tiny budgets cannot conclude: {:?}", result.verdict) // lint: allow
        };
        assert!(reason.contains("bmc:"), "per-lane accounts expected: {reason}");
    }
}
