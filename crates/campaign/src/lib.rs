//! Verification as a service for the Umezawa–Shimizu methodology:
//! persistent checkpoints, a crash-recoverable campaign daemon, and an
//! adaptive engine scheduler.
//!
//! The crate turns `veridic`'s one-shot campaign run into a durable
//! service over a campaign **directory**:
//!
//! - [`codec`] + [`store`] — a compact versioned binary format for
//!   [`veridic_mc::RunCheckpoint`] (including the exported-ROBDD
//!   reachability state), FNV-checksummed and fingerprint-pinned to
//!   the AIG and [`veridic_mc::CheckOptions`] that produced it, with
//!   atomic write-to-temp-then-rename persistence. Corrupt or stale
//!   files fail loud with typed errors — never a silent wrong resume.
//! - [`journal`] — one append-only state machine per property
//!   (`pending` → `running <pid>` → `done <record>`); the last
//!   parseable line wins, so torn writes degrade instead of corrupt.
//! - [`daemon`] + [`worker`] — the service: properties are sharded
//!   across OS processes (`current_exe() --worker`) over a
//!   length-prefixed pipe protocol; verdicts stream to
//!   `results.ndjson`; a killed daemon restarts by reaping orphaned
//!   `running` entries and resuming each property from its last
//!   checkpoint, reproducing the uninterrupted run's Table 2
//!   byte-for-byte.
//! - [`scheduler`] — an opt-in adaptive alternative to the fixed
//!   engine cascade: engines run in time-sliced lanes and the lane
//!   showing progress (BMC depth, reachability frontier growth) earns
//!   a boosted budget each round. Off by default; the default
//!   portfolio order is preserved exactly when disabled.
//! - [`signal`] — SIGTERM/SIGINT latching so daemon and workers flush
//!   in-flight checkpoints before exit.
//!
//! See `ARCHITECTURE.md` ("The campaign service") for the journal
//! state machine, the checkpoint file format, and the crash-recovery
//! invariants.

pub mod codec;
pub mod daemon;
pub mod journal;
pub mod scheduler;
pub mod signal;
pub mod spec;
pub mod store;
pub mod wire;
pub mod worker;

pub use codec::{CheckpointFile, CodecError, PersistedState};
pub use daemon::{run, status, submit, DaemonError, RunOutcome, StatusSummary, SubmitSummary};
pub use journal::{JobState, Journal};
pub use scheduler::{AdaptiveCheckpoint, AdaptiveScheduler, AdaptiveStep};
pub use spec::{CampaignSpec, SpecError};
pub use store::{load_checkpoint, save_checkpoint, LoadError};
pub use worker::{maybe_run_worker, CampaignDir};
