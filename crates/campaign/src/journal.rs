//! The per-property job journal: an append-only state machine on disk.
//!
//! One journal file per property, holding one state transition per
//! line: `pending` → `running <pid>` → `done <hex-record>`. Lines are
//! appended and fsynced, never rewritten; the reader takes the **last
//! parseable line** as the current state, so a line torn by a crash
//! mid-append is simply ignored and the job falls back to its previous
//! state. The `done` payload is the binary [`PropertyRecord`] codec
//! (own magic and checksum) in lowercase hex — a flipped bit in a done
//! line demotes the job to its previous `running` state rather than
//! resurrecting a corrupt verdict.
//!
//! Recovery semantics live in [`JobState::effective`]: a `running`
//! entry whose pid no longer exists is an orphan from a crashed
//! daemon and counts as `pending` again (the worker that picks it up
//! resumes from the property's persisted checkpoint, if one survived).

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use veridic_core::flow::PropertyRecord;

use crate::codec::{decode_record, encode_record};
use crate::signal::pid_alive;

/// A job's journaled state.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Never started, or explicitly re-queued.
    Pending,
    /// Claimed by the worker process `pid`.
    Running {
        /// The claiming worker's pid at claim time.
        pid: u32,
    },
    /// Concluded with a full property record.
    Done(Box<PropertyRecord>),
}

impl JobState {
    /// The state a restarted daemon should act on: `Running` whose pid
    /// is dead is an orphan and is effectively `Pending`.
    pub fn effective(self) -> JobState {
        match self {
            JobState::Running { pid } if !pid_alive(pid) => JobState::Pending,
            other => other,
        }
    }
}

/// Handle to one property's journal file.
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
}

pub(crate) fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    s
}

pub(crate) fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let digits: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(digits.chunks(2).map(|d| (d[0] << 4 | d[1]) as u8).collect())
}

impl Journal {
    /// The journal for job `id` inside `jobs_dir`.
    pub fn for_job(jobs_dir: &Path, id: usize) -> Journal {
        Journal { path: jobs_dir.join(format!("{id}.journal")) }
    }

    /// The underlying file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, line: &str) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(&self.path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()
    }

    /// Appends a `pending` transition (also the creation write).
    pub fn mark_pending(&self) -> io::Result<()> {
        self.append("pending")
    }

    /// Appends a `running` transition claimed by `pid`.
    pub fn mark_running(&self, pid: u32) -> io::Result<()> {
        self.append(&format!("running {pid}"))
    }

    /// Appends a `done` transition with the full encoded record.
    pub fn mark_done(&self, record: &PropertyRecord) -> io::Result<()> {
        self.append(&format!("done {}", to_hex(&encode_record(record))))
    }

    /// The current state: the last parseable line, `Pending` if the
    /// file is missing or holds no valid line.
    pub fn load(&self) -> JobState {
        let Ok(text) = fs::read_to_string(&self.path) else {
            return JobState::Pending;
        };
        let mut state = JobState::Pending;
        for line in text.lines() {
            if let Some(parsed) = parse_line(line.trim_end()) {
                state = parsed;
            }
        }
        state
    }
}

fn parse_line(line: &str) -> Option<JobState> {
    if line == "pending" {
        return Some(JobState::Pending);
    }
    if let Some(pid) = line.strip_prefix("running ") {
        return pid.parse().ok().map(|pid| JobState::Running { pid });
    }
    if let Some(hex) = line.strip_prefix("done ") {
        let bytes = from_hex(hex)?;
        return decode_record(&bytes).ok().map(|r| JobState::Done(Box::new(r)));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use veridic_chipgen::{Category, PropertyType};
    use veridic_mc::{CheckStats, Verdict};

    fn record() -> PropertyRecord {
        PropertyRecord {
            module: "alu_0".into(),
            category: Category::B,
            vunit: "v_alu".into(),
            label: "sound".into(),
            ptype: PropertyType::Soundness,
            verdict: Verdict::Proved { engine: "bdd-umc" },
            stats: CheckStats::default(),
            duration: Duration::from_millis(3),
        }
    }

    fn temp_jobs_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("veridic-journal-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap(); // lint: allow
        dir
    }

    #[test]
    fn walks_the_state_machine_last_line_wins() {
        let dir = temp_jobs_dir("walk");
        let j = Journal::for_job(&dir, 0);
        assert!(matches!(j.load(), JobState::Pending), "missing file is pending");
        j.mark_pending().unwrap(); // lint: allow
        j.mark_running(std::process::id()).unwrap(); // lint: allow
        assert!(matches!(j.load(), JobState::Running { .. }));
        j.mark_done(&record()).unwrap(); // lint: allow
        let JobState::Done(r) = j.load() else {
            panic!("done line must win") // lint: allow
        };
        assert_eq!(r.module, "alu_0");
        assert_eq!(r.verdict, Verdict::Proved { engine: "bdd-umc" });
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_done_line_falls_back_to_running() {
        let dir = temp_jobs_dir("torn");
        let j = Journal::for_job(&dir, 1);
        j.mark_running(std::process::id()).unwrap(); // lint: allow
        // A done append cut mid-line (no newline, half the hex).
        let full = format!("done {}", to_hex(&encode_record(&record())));
        let torn = &full[..full.len() / 2];
        let mut f = OpenOptions::new().append(true).open(j.path()).unwrap(); // lint: allow
        f.write_all(torn.as_bytes()).unwrap(); // lint: allow
        drop(f);
        assert!(matches!(j.load(), JobState::Running { .. }), "torn line must be ignored");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_running_entry_is_effectively_pending() {
        let dir = temp_jobs_dir("orphan");
        let j = Journal::for_job(&dir, 2);
        j.mark_running(u32::MAX - 1).unwrap(); // lint: allow
        assert!(matches!(j.load().effective(), JobState::Pending));
        j.mark_running(std::process::id()).unwrap(); // lint: allow
        assert!(matches!(j.load().effective(), JobState::Running { .. }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).as_deref(), Some(bytes.as_slice()));
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex digit");
    }
}
