//! Atomic checkpoint persistence: write-to-temp, fsync, rename.
//!
//! A checkpoint file is only ever observed in one of two states — the
//! previous complete version or the new complete version — because the
//! bytes land in a `.tmp` sibling first and are renamed over the
//! destination only after `sync_all`. A `kill -9` between any two
//! syscalls leaves either the old file or a stray `.tmp` (which loads
//! ignore); the codec's trailing checksum catches the remaining
//! torn-sector cases.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::codec::{CheckpointFile, CodecError};

/// A failed checkpoint load, distinguishing I/O from format damage.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes were read but are damaged or mismatched.
    Codec(CodecError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "checkpoint unreadable: {e}"),
            LoadError::Codec(e) => write!(f, "checkpoint invalid: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Codec(e) => Some(e),
        }
    }
}

/// Writes `bytes` to `path` atomically: temp sibling, fsync, rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    {
        let mut f = fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(tmp, path)
}

/// Persists a checkpoint envelope atomically.
pub fn save_checkpoint(path: &Path, file: &CheckpointFile) -> io::Result<()> {
    write_atomic(path, &file.encode())
}

/// Loads and validates a checkpoint envelope; `expected` binds it to
/// the `(aig, options)` fingerprints of the run about to resume.
pub fn load_checkpoint(
    path: &Path,
    expected: Option<(u64, u64)>,
) -> Result<CheckpointFile, LoadError> {
    let bytes = fs::read(path).map_err(LoadError::Io)?;
    CheckpointFile::decode(&bytes, expected).map_err(LoadError::Codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::PersistedState;
    use veridic_mc::{CheckStats, EngineCheckpoint, RunCheckpoint};

    fn sample() -> CheckpointFile {
        CheckpointFile {
            aig_fingerprint: 7,
            options_fingerprint: 9,
            state: PersistedState::Portfolio(Box::new(RunCheckpoint {
                bad_index: 0,
                slot: 1,
                state: EngineCheckpoint::Induction { next_k: 3 },
                stats: CheckStats::default(),
                reasons: Vec::new(),
            })),
        }
    }

    #[test]
    fn save_load_round_trip_and_no_temp_residue() {
        let dir = std::env::temp_dir().join(format!("veridic-store-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap(); // lint: allow
        let path = dir.join("p0.ckpt");
        save_checkpoint(&path, &sample()).unwrap(); // lint: allow
        assert!(!dir.join("p0.ckpt.tmp").exists(), "temp must be renamed away");
        let back = load_checkpoint(&path, Some((7, 9))).unwrap(); // lint: allow
        assert!(matches!(back.state, PersistedState::Portfolio(ref ck) if ck.slot == 1));
        // Overwrite keeps the file valid.
        save_checkpoint(&path, &sample()).unwrap(); // lint: allow
        assert!(load_checkpoint(&path, None).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_damaged_files_are_distinguished() {
        let dir = std::env::temp_dir().join(format!("veridic-store2-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap(); // lint: allow
        let missing = load_checkpoint(&dir.join("absent.ckpt"), None);
        assert!(matches!(missing, Err(LoadError::Io(_))));
        let path = dir.join("torn.ckpt");
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap(); // lint: allow
        assert!(matches!(load_checkpoint(&path, None), Err(LoadError::Codec(_))));
        fs::remove_dir_all(&dir).ok();
    }
}
