//! `campaignd` — the campaign service binary.
//!
//! One executable plays both roles: invoked as `campaignd --worker <dir>`
//! it becomes a verification worker on the daemon's pipe protocol;
//! otherwise it exposes the service verbs:
//!
//! ```text
//! campaignd submit <dir> [key value]...   lay out a campaign directory
//! campaignd run <dir>                     run/resume the campaign
//! campaignd status <dir>                  one-line state summary
//! ```
//!
//! `submit` accepts `key value` pairs in the campaign-spec vocabulary
//! (`scale small|full`, `with_bugs true`, `shards 4`, `adaptive true`,
//! `slice_rounds 16`, plus any `CheckOptions` field — see
//! `CampaignSpec`).

use std::path::Path;
use std::process::ExitCode;

use veridic_campaign::{maybe_run_worker, run, status, submit, CampaignSpec, RunOutcome};

fn usage() -> ExitCode {
    eprintln!("usage: campaignd submit <dir> [key value]... | run <dir> | status <dir>");
    ExitCode::from(2)
}

fn fail(err: impl std::fmt::Display) -> ExitCode {
    eprintln!("campaignd: {err}");
    ExitCode::FAILURE
}

fn parse_spec(pairs: &[String]) -> Result<CampaignSpec, String> {
    if pairs.len() % 2 != 0 {
        return Err("spec overrides must come in `key value` pairs".to_string());
    }
    let mut text = String::from("veridic-campaign-spec v1\n");
    for pair in pairs.chunks(2) {
        text.push_str(&format!("{} {}\n", pair[0], pair[1]));
    }
    // Round through the parser so overrides get the same closed-world
    // validation as a spec file; unspecified keys keep their defaults.
    CampaignSpec::parse(&text).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    if let Some(code) = maybe_run_worker() {
        return ExitCode::from(u8::try_from(code.rem_euclid(256)).unwrap_or(1));
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (verb, rest) = match args.split_first() {
        Some((v, rest)) => (v.as_str(), rest),
        None => return usage(),
    };
    let Some((dir, extra)) = rest.split_first() else {
        return usage();
    };
    let dir = Path::new(dir);
    match verb {
        "submit" => match parse_spec(extra).map_err(|e| e.to_string()).and_then(|spec| {
            submit(dir, &spec).map_err(|e| e.to_string())
        }) {
            Ok(summary) => {
                println!(
                    "submitted {} jobs ({} module errors) to {}",
                    summary.jobs,
                    summary.module_errors,
                    dir.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "run" => match run(dir) {
            Ok(RunOutcome::Completed(report)) => {
                println!(
                    "campaign complete: {} records, {} errors",
                    report.records.len(),
                    report.errors.len()
                );
                ExitCode::SUCCESS
            }
            Ok(RunOutcome::Interrupted { done, total }) => {
                println!("campaign interrupted: {done}/{total} done; run again to resume");
                ExitCode::from(3)
            }
            Err(e) => fail(e),
        },
        "status" => match status(dir) {
            Ok(s) => {
                let daemon = match s.daemon_pid {
                    Some(pid) => format!("daemon pid {pid}"),
                    None => "no daemon".to_string(),
                };
                println!(
                    "{} jobs: {} pending, {} running, {} done ({daemon})",
                    s.jobs, s.pending, s.running, s.done
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}
