//! End-to-end crash recovery: a campaign daemon killed with `kill -9`
//! mid-flight and restarted must reproduce the uninterrupted run's
//! Table 2 byte-for-byte, and the same per-property records modulo
//! wall-clock durations.
//!
//! The test drives the real `campaignd` binary (daemon + worker
//! processes), not in-process shims — the recovery path under test is
//! journal scanning, orphan reaping and checkpoint resume across
//! actual process boundaries.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn campaignd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_campaignd"))
}

fn temp_campaign_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veridic-crash-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Submits the shared spec: the small bug-seeded chip, two worker
/// shards, one-round slices (maximum checkpoint traffic).
fn submit(dir: &Path, adaptive: bool) {
    let status = campaignd()
        .arg("submit")
        .arg(dir)
        .args(["with_bugs", "true"])
        .args(["shards", "2"])
        .args(["slice_rounds", "1"])
        .args(["adaptive", if adaptive { "true" } else { "false" }])
        .stdout(Stdio::null())
        .status()
        .expect("spawn campaignd submit"); // lint: allow
    assert!(status.success(), "submit failed: {status}");
}

fn run_to_completion(dir: &Path) {
    let output = campaignd()
        .arg("run")
        .arg(dir)
        .stdout(Stdio::piped())
        .output()
        .expect("spawn campaignd run"); // lint: allow
    assert!(
        output.status.success(),
        "run failed: {} / {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

fn results_line_count(dir: &Path) -> usize {
    fs::read_to_string(dir.join("results.ndjson")).map(|t| t.lines().count()).unwrap_or(0)
}

/// Worker processes of the campaign in `dir`, found by /proc cmdline
/// (the campaign path is a unique temp dir, so matches are ours).
fn worker_pids(dir: &Path) -> Vec<u32> {
    let needle = format!("--worker\0{}", dir.display()).into_bytes();
    let mut pids = Vec::new();
    let Ok(entries) = fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry.file_name().to_string_lossy().parse::<u32>().ok() else {
            continue;
        };
        let Ok(cmdline) = fs::read(entry.path().join("cmdline")) else {
            continue;
        };
        if cmdline.windows(needle.len()).any(|w| w == needle) {
            pids.push(pid);
        }
    }
    pids
}

fn kill9(pid: u32) {
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
}

/// One record line with its wall-clock tail (`"duration_ms":N}`)
/// removed — everything else must be deterministic.
fn strip_duration(line: &str) -> String {
    match line.rsplit_once(",\"duration_ms\"") {
        Some((head, _)) => format!("{head}}}"),
        None => line.to_string(),
    }
}

/// The deterministic view of `results.ndjson`: record lines minus
/// durations, sorted (shards complete in nondeterministic order), with
/// the campaign summary line (keyed by `total_time_ms`) dropped.
fn canonical_records(dir: &Path) -> Vec<String> {
    let text = fs::read_to_string(dir.join("results.ndjson")).expect("results.ndjson"); // lint: allow
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.contains("\"total_time_ms\""))
        .map(strip_duration)
        .collect();
    lines.sort();
    lines
}

#[test]
fn kill_dash_nine_mid_campaign_recovers_to_identical_table2() {
    let baseline = temp_campaign_dir("baseline");
    let crashed = temp_campaign_dir("crashed");

    // Uninterrupted reference run.
    submit(&baseline, false);
    run_to_completion(&baseline);
    let reference_table2 =
        fs::read_to_string(baseline.join("table2.txt")).expect("baseline table2"); // lint: allow
    let reference_records = canonical_records(&baseline);
    assert!(!reference_records.is_empty(), "baseline produced no records");

    // Same campaign, but the daemon dies hard mid-flight.
    submit(&crashed, false);
    let mut daemon = campaignd()
        .arg("run")
        .arg(&crashed)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn campaignd run"); // lint: allow
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed_mid_flight = false;
    loop {
        if results_line_count(&crashed) >= 2 {
            daemon.kill().expect("kill -9 daemon"); // lint: allow
            for pid in worker_pids(&crashed) {
                kill9(pid);
            }
            killed_mid_flight = true;
            break;
        }
        if let Ok(Some(_)) = daemon.try_wait() {
            // The campaign finished before we could kill it; recovery
            // is not exercised but the equality checks below still
            // hold. (With 1-round slices this should not happen.)
            break;
        }
        assert!(Instant::now() < deadline, "campaign never produced 2 results");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = daemon.wait();
    // Wait for the killed workers to disappear before restarting.
    let reap_deadline = Instant::now() + Duration::from_secs(30);
    while !worker_pids(&crashed).is_empty() {
        assert!(Instant::now() < reap_deadline, "workers survived kill -9");
        std::thread::sleep(Duration::from_millis(10));
    }

    if killed_mid_flight {
        // Restart: journals are reaped, checkpoints resumed.
        run_to_completion(&crashed);
    }

    let recovered_table2 =
        fs::read_to_string(crashed.join("table2.txt")).expect("recovered table2"); // lint: allow
    assert_eq!(
        recovered_table2, reference_table2,
        "recovered Table 2 must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        canonical_records(&crashed),
        reference_records,
        "recovered records must match the uninterrupted run modulo durations"
    );

    fs::remove_dir_all(&baseline).ok();
    fs::remove_dir_all(&crashed).ok();
}

#[test]
fn adaptive_campaign_completes_with_a_full_table() {
    let dir = temp_campaign_dir("adaptive");
    submit(&dir, true);
    run_to_completion(&dir);
    let table2 = fs::read_to_string(dir.join("table2.txt")).expect("adaptive table2"); // lint: allow
    assert!(table2.starts_with("Table 2."), "table2 header missing: {table2:?}");
    assert!(!canonical_records(&dir).is_empty(), "adaptive campaign produced no records");

    // status on the finished campaign: everything done, no daemon.
    let output = campaignd().arg("status").arg(&dir).output().expect("status"); // lint: allow
    let text = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(text.contains("0 pending, 0 running"), "unexpected status: {text}");
    assert!(text.contains("no daemon"), "pid lock not released: {text}");

    fs::remove_dir_all(&dir).ok();
}
