//! CNF construction: fresh-variable management and Tseitin encoding of
//! And-Inverter Graphs for the bounded model checker.

use crate::{Lit, Solver};
use veridic_aig::hash::FxHashMap;
use veridic_aig::{Aig, LatchId, Lit as ALit, Var as AVar};

/// Builds CNF incrementally into a [`Solver`], mapping AIG nodes of one
/// *time frame* to solver literals.
///
/// BMC unrolls an AIG by calling [`CnfBuilder::encode_frame`] once per
/// cycle: frame `k+1`'s latch literals are frame `k`'s next-state
/// literals, and frame 0's latches are constants fixed to the initial
/// state (or free variables for k-induction).
#[derive(Debug)]
pub struct CnfBuilder<'a> {
    solver: &'a mut Solver,
}

/// The literal map of one encoded time frame.
#[derive(Clone, Debug, Default)]
pub struct Frame {
    map: FxHashMap<AVar, Lit>,
    /// Solver literals for each AIG primary input of this frame.
    pub inputs: Vec<Lit>,
    /// Solver literals for each latch's *next* state leaving this frame.
    pub next_state: Vec<Lit>,
}

impl Frame {
    /// Maps an AIG literal to its solver literal in this frame.
    ///
    /// # Panics
    ///
    /// Panics if the node was outside the encoded cone.
    pub fn lit(&self, l: ALit) -> Lit {
        let base = *self
            .map
            .get(&l.var())
            .expect("AIG node was not encoded in this frame"); // lint: allow
        if l.is_compl() {
            !base
        } else {
            base
        }
    }

    /// True if the AIG literal was encoded in this frame.
    pub fn contains(&self, l: ALit) -> bool {
        self.map.contains_key(&l.var())
    }
}

impl<'a> CnfBuilder<'a> {
    /// Wraps a solver for CNF emission.
    pub fn new(solver: &'a mut Solver) -> Self {
        CnfBuilder { solver }
    }

    /// A literal that is constant true in the solver (lazily created as a
    /// unit-clause variable).
    fn true_lit(&mut self) -> Lit {
        let v = self.solver.new_var();
        let l = Lit::pos(v);
        self.solver.add_clause(&[l]);
        l
    }

    /// Encodes one time frame of `aig`.
    ///
    /// `latch_in[i]` supplies the solver literal holding latch `i`'s
    /// current state entering this frame; pass `None` to have the builder
    /// allocate free variables (used by induction for an arbitrary start
    /// state) or `Some(frame.next_state)` wiring from the previous frame.
    pub fn encode_frame(&mut self, aig: &Aig, latch_in: Option<&[Lit]>) -> Frame {
        let mut frame = Frame::default();
        let t = self.true_lit();
        frame.map.insert(AVar(0), !t); // constant false node
        // Inputs: fresh variables.
        for (var, _name) in aig.inputs() {
            let l = Lit::pos(self.solver.new_var());
            frame.map.insert(*var, l);
            frame.inputs.push(l);
        }
        // Latches: supplied or fresh.
        for (i, latch) in aig.latches().iter().enumerate() {
            let l = match latch_in {
                Some(lits) => lits[i],
                None => Lit::pos(self.solver.new_var()),
            };
            frame.map.insert(latch.var, l);
        }
        // ANDs in topological order.
        for v in aig.and_order() {
            let (a, b) = aig.and_fanins(v).expect("and_order yields AND nodes"); // lint: allow
            let la = frame.lit(a);
            let lb = frame.lit(b);
            let lo = Lit::pos(self.solver.new_var());
            // o <-> a & b
            self.solver.add_clause(&[!lo, la]);
            self.solver.add_clause(&[!lo, lb]);
            self.solver.add_clause(&[lo, !la, !lb]);
            frame.map.insert(v, lo);
        }
        // Next-state literals.
        for latch in aig.latches() {
            frame.next_state.push(frame.lit(latch.next));
        }
        frame
    }

    /// Adds unit clauses pinning latch-in literals of `frame` to the AIG's
    /// initial state. Call on frame 0 of a BMC run.
    pub fn assert_initial(&mut self, aig: &Aig, frame: &Frame) {
        for latch in aig.latches() {
            let l = frame.lit(ALit::new(latch.var, false));
            let unit = if latch.init { l } else { !l };
            self.solver.add_clause(&[unit]);
        }
    }

    /// Adds clauses requiring every constraint of `aig` to hold in `frame`.
    pub fn assert_constraints(&mut self, aig: &Aig, frame: &Frame) {
        for c in aig.constraints() {
            let l = frame.lit(c.lit);
            self.solver.add_clause(&[l]);
        }
    }

    /// Returns the latch-in literal of `latch` in `frame`.
    pub fn latch_lit(&self, aig: &Aig, frame: &Frame, latch: LatchId) -> Lit {
        frame.lit(ALit::new(aig.latch_info(latch).var, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    /// XOR circuit: SAT exactly when output can be 1.
    #[test]
    fn tseitin_xor_is_correct() {
        let mut aig = Aig::new();
        let a = aig.input("a");
        let b = aig.input("b");
        let y = aig.xor(a, b);

        let mut s = Solver::new();
        let mut cb = CnfBuilder::new(&mut s);
        let frame = cb.encode_frame(&aig, None);
        let ly = frame.lit(y);
        // Force y=1, a=1: then b must be 0.
        let la = frame.lit(a);
        let lb = frame.lit(b);
        assert_eq!(s.solve(&[ly, la]), SolveResult::Sat);
        assert_eq!(s.value(lb.var()), Some(lb.is_neg()), "b must be false");
        // y=1, a=1, b=1 impossible.
        assert_eq!(s.solve(&[ly, la, lb]), SolveResult::Unsat);
    }

    /// Exhaustive equivalence: CNF encoding agrees with AIG evaluation for
    /// a small mixed circuit.
    #[test]
    fn tseitin_matches_aig_semantics() {
        let mut aig = Aig::new();
        let ins: Vec<ALit> = (0..4).map(|i| aig.input(format!("i{i}"))).collect();
        let x = aig.xor(ins[0], ins[1]);
        let m = aig.mux(ins[2], x, ins[3]);
        let root = aig.and(m, ins[0]);

        for assignment in 0..16u32 {
            let want = aig.eval_comb(root, &|v| {
                let idx = aig.input_index(v).unwrap();
                assignment >> idx & 1 == 1
            });
            let mut s = Solver::new();
            let mut cb = CnfBuilder::new(&mut s);
            let frame = cb.encode_frame(&aig, None);
            let mut assumptions = Vec::new();
            for (idx, l) in frame.inputs.iter().enumerate() {
                let bit = assignment >> idx & 1 == 1;
                assumptions.push(if bit { *l } else { !*l });
            }
            let lroot = frame.lit(root);
            assumptions.push(if want { lroot } else { !lroot });
            assert_eq!(s.solve(&assumptions), SolveResult::Sat, "assignment {assignment:04b}");
            // And the opposite value must be UNSAT.
            *assumptions.last_mut().unwrap() = if want { !lroot } else { lroot };
            assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        }
    }

    /// Two-frame unrolling of a toggle latch: q0=init=false, q1=!q0=true.
    #[test]
    fn frames_chain_latches() {
        let mut aig = Aig::new();
        let (id, q) = aig.latch("q", false);
        aig.set_next(id, !q);

        let mut s = Solver::new();
        let mut cb = CnfBuilder::new(&mut s);
        let f0 = cb.encode_frame(&aig, None);
        cb.assert_initial(&aig, &f0);
        let f1 = cb.encode_frame(&aig, Some(&f0.next_state));
        let q0 = f0.lit(q);
        let q1 = f1.lit(q);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(q0.var()).map(|v| v ^ q0.is_neg()), Some(false));
        assert_eq!(s.value(q1.var()).map(|v| v ^ q1.is_neg()), Some(true));
    }

    #[test]
    fn constraints_prune_models() {
        let mut aig = Aig::new();
        let a = aig.input("a");
        let b = aig.input("b");
        aig.add_constraint("a_is_true", a);
        let both = aig.and(a, b);

        let mut s = Solver::new();
        let mut cb = CnfBuilder::new(&mut s);
        let frame = cb.encode_frame(&aig, None);
        cb.assert_constraints(&aig, &frame);
        let lboth = frame.lit(both);
        let lb = frame.lit(b);
        // With constraint a=1, both <-> b.
        assert_eq!(s.solve(&[lboth, !lb]), SolveResult::Unsat);
        assert_eq!(s.solve(&[!lboth, lb]), SolveResult::Unsat);
        assert_eq!(s.solve(&[lboth, lb]), SolveResult::Sat);
    }
}
