//! The CDCL search core.

use crate::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::value`].
    Sat,
    /// The instance is unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    Undef,
    True,
    False,
}

impl Assign {
    fn from_bool(b: bool) -> Assign {
        if b {
            Assign::True
        } else {
            Assign::False
        }
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

type ClauseRef = usize;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// A CDCL SAT solver with incremental assumptions and a conflict budget.
///
/// See the crate docs for the feature list; construction is [`Solver::new`],
/// variables come from [`Solver::new_var`], clauses from
/// [`Solver::add_clause`], and queries run through [`Solver::solve`].
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    free_list: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Assign>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    conflicts: u64,
    budget: Option<u64>,
    learnt_refs: Vec<ClauseRef>,
    max_learnts: f64,
    seen: Vec<bool>,
    /// Statistics: total decisions.
    pub decisions: u64,
    /// Statistics: total propagations.
    pub propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            free_list: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            conflicts: 0,
            budget: None,
            learnt_refs: Vec::new(),
            max_learnts: 1000.0,
            seen: Vec::new(),
            decisions: 0,
            propagations: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.level.push(0);
        self.reason.push(None);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Total conflicts encountered so far (across all solve calls).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Limits the *total* number of conflicts; [`Solver::solve`] returns
    /// [`SolveResult::Unknown`] once `self.num_conflicts()` reaches the
    /// budget. `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Adds a clause. Returns `false` if the solver is now known
    /// unsatisfiable at level zero (callers may stop adding).
    ///
    /// # Panics
    ///
    /// Panics if called while the solver holds decisions (between
    /// incremental `solve` calls is fine — the trail is backtracked).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(self.trail_lim.is_empty(), "add_clause at decision level > 0");
        if !self.ok {
            return false;
        }
        // Normalise: sort, dedup, drop tautologies and false literals.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and !l
            }
            match self.lit_value(l) {
                Assign::True => return true, // satisfied at level 0
                Assign::False => continue,   // drop false literal
                Assign::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(out, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = if let Some(r) = self.free_list.pop() {
            self.clauses[r] = Clause { lits, learnt, activity: 0.0 };
            r
        } else {
            self.clauses.push(Clause { lits, learnt, activity: 0.0 });
            self.clauses.len() - 1
        };
        let c = &self.clauses[cref];
        let (w0, w1) = (c.lits[0], c.lits[1]);
        self.watches[(!w0).index()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).index()].push(Watcher { cref, blocker: w0 });
        if learnt {
            self.learnt_refs.push(cref);
        }
        cref
    }

    fn lit_value(&self, l: Lit) -> Assign {
        match self.assigns[l.var().0 as usize] {
            Assign::Undef => Assign::Undef,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer; `None`
    /// if the variable was irrelevant (never assigned).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.0 as usize] {
            Assign::Undef => None,
            Assign::True => Some(true),
            Assign::False => Some(false),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), Assign::Undef);
        let v = l.var().0 as usize;
        self.assigns[v] = Assign::from_bool(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // Quick check: blocker satisfied?
                if self.lit_value(w.blocker) == Assign::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is lits[1].
                let false_lit = !p;
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == Assign::True {
                    ws[i] = Watcher { cref, blocker: first };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.lit_value(lk) != Assign::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher { cref, blocker: first });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i] = Watcher { cref, blocker: first };
                i += 1;
                if self.lit_value(first) == Assign::False {
                    // Conflict: keep remaining watchers, stop.
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            // Entries removed by swap_remove are gone; everything left in
            // `ws` (kept prefix + unprocessed tail on conflict) stays
            // watched. No watcher for `p` can have been added meanwhile:
            // a new watch targets a non-false literal, and `!p` is false.
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn cla_bump(&mut self, cref: ClauseRef) {
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for &r in &self.learnt_refs {
                self.clauses[r].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);
        loop {
            let cref = confl.expect("analysis must have a reason"); // lint: allow
            self.cla_bump(cref);
            let start = if p.is_some() { 1 } else { 0 };
            let lits: Vec<Lit> = self.clauses[cref].lits[start..].to_vec();
            for q in lits {
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.var_bump(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal to expand.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize; // lint: allow
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.unwrap(); // lint: allow
                break;
            }
            confl = self.reason[pv];
        }
        // Clause minimisation (cheap local check): remove literals whose
        // reason clause is entirely subsumed by the learnt set.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.redundant(l, &learnt))
            .collect();
        let mut out = vec![learnt[0]];
        out.extend(keep);
        // Compute backtrack level = max level among out[1..].
        let bt = if out.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..out.len() {
                if self.level[out[i].var().0 as usize] > self.level[out[max_i].var().0 as usize] {
                    max_i = i;
                }
            }
            out.swap(1, max_i);
            self.level[out[1].var().0 as usize]
        };
        for l in &learnt[1..] {
            self.seen[l.var().0 as usize] = false;
        }
        (out, bt)
    }

    /// A literal is redundant if its reason's literals are all already in
    /// the learnt clause (single-step self-subsumption).
    fn redundant(&self, l: Lit, learnt: &[Lit]) -> bool {
        match self.reason[l.var().0 as usize] {
            None => false,
            Some(cref) => self.clauses[cref].lits[1..].iter().all(|&q| {
                learnt.contains(&q) || self.level[q.var().0 as usize] == 0
            }),
        }
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var().0 as usize;
            self.polarity[v] = self.assigns[v] == Assign::True;
            self.assigns[v] = Assign::Undef;
            self.reason[v] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Highest-activity unassigned variable (linear scan is fine at the
        // problem sizes of leaf-module cones; a heap would change nothing
        // semantically).
        let mut best: Option<Var> = None;
        let mut best_act = -1.0f64;
        for v in 0..self.assigns.len() {
            if self.assigns[v] == Assign::Undef && self.activity[v] > best_act {
                best_act = self.activity[v];
                best = Some(Var(v as u32));
            }
        }
        best.map(|v| {
            if self.polarity[v.0 as usize] {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        })
    }

    fn reduce_db(&mut self) {
        self.learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: veridic_aig::hash::FxHashSet<ClauseRef> =
            self.reason.iter().flatten().copied().collect();
        let half = self.learnt_refs.len() / 2;
        let mut removed = Vec::new();
        let mut kept = Vec::new();
        for (i, &cref) in self.learnt_refs.iter().enumerate() {
            if i < half && self.clauses[cref].learnt && !locked.contains(&cref) && self.clauses[cref].lits.len() > 2 {
                removed.push(cref);
            } else {
                kept.push(cref);
            }
        }
        for cref in removed {
            self.detach_clause(cref);
        }
        self.learnt_refs = kept;
    }

    fn detach_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = (self.clauses[cref].lits[0], self.clauses[cref].lits[1]);
        self.watches[(!w0).index()].retain(|w| w.cref != cref);
        self.watches[(!w1).index()].retain(|w| w.cref != cref);
        self.clauses[cref].lits.clear();
        self.free_list.push(cref);
    }

    /// Solves under the given assumptions.
    ///
    /// Returns [`SolveResult::Sat`] with a model readable via
    /// [`Solver::value`], [`SolveResult::Unsat`] if no model exists under
    /// the assumptions, or [`SolveResult::Unknown`] if the conflict budget
    /// ran out. The solver remains usable (incrementally) afterwards.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut luby_idx = 0u32;
        let mut restart_budget = 100.0 * luby(luby_idx);
        let mut conflicts_this_restart = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                // All assumption-level conflicts below the assumption count
                // mean UNSAT under assumptions: handled by re-deciding below.
                let (learnt, bt) = self.analyze(confl);
                // Never backtrack above the assumption prefix: if the
                // asserting level is inside the assumptions, re-propagating
                // will re-derive the conflict and eventually hit level 0 or
                // fail an assumption.
                self.backtrack(bt);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == Assign::False {
                        // Asserting literal contradicts an assumption level
                        // assignment at or below bt: unsat under assumptions.
                        return SolveResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == Assign::Undef {
                        self.unchecked_enqueue(learnt[0], None);
                    }
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    self.cla_bump(cref);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.var_decay();
                if let Some(b) = self.budget {
                    if self.conflicts >= b {
                        self.backtrack(0);
                        return SolveResult::Unknown;
                    }
                }
                if self.learnt_refs.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                if conflicts_this_restart as f64 >= restart_budget
                    && self.decision_level() > assumptions.len() as u32
                {
                    // Restart, keeping assumption decisions.
                    self.backtrack(assumptions.len() as u32);
                    luby_idx += 1;
                    restart_budget = 100.0 * luby(luby_idx);
                    conflicts_this_restart = 0;
                }
                // Take the next assumption, if any.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        Assign::True => {
                            // Already satisfied: open an empty decision level.
                            self.trail_lim.push(self.trail.len());
                        }
                        Assign::False => {
                            return SolveResult::Unsat;
                        }
                        Assign::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return SolveResult::Sat,
                    Some(l) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (base 2), indexed from 0:
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
fn luby(x: u32) -> f64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < (x as u64) + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x as u64;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    2f64.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: Var, pos: bool) -> Lit {
        if pos {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(!s.add_clause(&[Lit::neg(a)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]); // v_i -> v_{i+1}
        }
        s.add_clause(&[Lit::pos(vs[0])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for v in vs {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes. Var p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(&[Lit::neg(a)]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve(&[Lit::neg(a), Lit::neg(b)]), SolveResult::Unsat);
        // Solver still usable, and SAT without assumptions.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn budget_returns_unknown_on_hard_instance() {
        // PHP(6,5) is non-trivial for a CDCL solver; with a 5-conflict
        // budget it must give up.
        let mut s = Solver::new();
        let n = 6;
        let m = 5;
        let mut p = vec![vec![Var(0); m]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let cls: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&cls);
        }
        for j in 0..m {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        // Raising the budget resolves it.
        s.set_conflict_budget(Some(1_000_000));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_vs_brute_force() {
        // Deterministic xorshift for reproducibility.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for iter in 0..200 {
            let nvars = 6usize;
            let nclauses = 3 + (rnd() % 24) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut cls = Vec::new();
                for _ in 0..3 {
                    let v = (rnd() % nvars as u64) as u32;
                    let neg = rnd() % 2 == 0;
                    cls.push(lit(Var(v), !neg));
                }
                clauses.push(cls);
            }
            // Brute force.
            let mut bf_sat = false;
            'outer: for asg in 0..(1u32 << nvars) {
                for c in &clauses {
                    let ok = c.iter().any(|l| {
                        let val = asg >> l.var().0 & 1 == 1;
                        val != l.is_neg()
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                bf_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve(&[]);
            let want = if bf_sat { SolveResult::Sat } else { SolveResult::Unsat };
            assert_eq!(got, want, "iteration {iter} clauses {clauses:?}");
            if got == SolveResult::Sat {
                // Verify the model.
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| s.value(l.var()) == Some(!l.is_neg())),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1., 1., 2., 1., 1., 2., 4., 1., 1., 2., 1., 1., 2., 4., 8.]);
    }
}
