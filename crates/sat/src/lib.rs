//! # veridic-sat
//!
//! A from-scratch CDCL SAT solver plus CNF construction utilities — the
//! falsification engine behind veridic's bounded model checking and
//! k-induction (the stand-in for the paper's "commercial formal
//! verification tool ... equipped with various formal solver algorithms").
//!
//! Features: two-literal watching, first-UIP conflict analysis with clause
//! learning, VSIDS decision heuristic with phase saving, Luby restarts,
//! activity-based learnt-clause reduction, incremental solving under
//! assumptions, and a deterministic conflict budget (the reproducible
//! "time-out" used by the resource-bounded verification flow).
//!
//! ```
//! use veridic_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod solver;

pub use cnf::CnfBuilder;
pub use solver::{SolveResult, Solver};

use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index for watch lists.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", if self.is_neg() { "!" } else { "" }, self.var().0)
    }
}

#[cfg(test)]
mod lit_tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_ne!(p.index(), n.index());
    }
}
