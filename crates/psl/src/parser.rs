//! PSL parser (reuses the Verilog lexer for the boolean layer's tokens).

use crate::ast::*;
use std::error::Error;
use std::fmt;
use veridic_verilog::{lex, Tok, Token};

/// PSL parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PslParseError {
    /// Description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for PslParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PSL parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for PslParseError {}

/// Parses PSL source containing one or more vunits.
///
/// # Errors
///
/// Returns a [`PslParseError`] with line information on malformed input.
pub fn parse_psl(src: &str) -> Result<Vec<VUnit>, PslParseError> {
    let tokens = lex(src).map_err(|e| PslParseError { message: e.message, line: e.line })?;
    let mut p = P { toks: tokens, pos: 0 };
    let mut units = Vec::new();
    while !p.at_eof() {
        units.push(p.vunit()?);
    }
    Ok(units)
}

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, PslParseError> {
        Err(PslParseError { message: m.into(), line: self.line() })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), PslParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected '{p}', found '{other}'")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, PslParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    fn number(&mut self) -> Result<u64, PslParseError> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                Ok(n)
            }
            other => self.err(format!("expected number, found '{other}'")),
        }
    }

    fn vunit(&mut self) -> Result<VUnit, PslParseError> {
        if !self.eat_kw("vunit") {
            return self.err("expected 'vunit'");
        }
        let name = self.ident()?;
        self.expect_punct("(")?;
        let module = self.ident()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut unit = VUnit { name, module, properties: Vec::new(), directives: Vec::new() };
        let mut anon = 0usize;
        loop {
            if self.eat_punct("}") {
                break;
            }
            if self.at_eof() {
                return self.err("unexpected end of input inside vunit");
            }
            if self.eat_kw("property") {
                let pname = self.ident()?;
                self.expect_punct("=")?;
                let prop = self.prop()?;
                self.expect_punct(";")?;
                unit.properties.push((pname, prop));
            } else if self.eat_kw("default") {
                // `default clock = (posedge CK);` — accepted and ignored:
                // the IR has a single implicit clock.
                while !self.eat_punct(";") {
                    if self.at_eof() {
                        return self.err("unterminated default clock declaration");
                    }
                    self.bump();
                }
            } else {
                let kind = if self.eat_kw("assert") {
                    DirectiveKind::Assert
                } else if self.eat_kw("assume") {
                    DirectiveKind::Assume
                } else if self.eat_kw("restrict") {
                    DirectiveKind::Restrict
                } else {
                    return self.err(format!(
                        "expected 'property', 'assert', 'assume' or 'restrict', found '{}'",
                        self.peek()
                    ));
                };
                let prop = self.prop()?;
                self.expect_punct(";")?;
                let label = match &prop {
                    Prop::Ref(n) => n.clone(),
                    _ => {
                        anon += 1;
                        format!("{}_{}", kind_str(kind), anon)
                    }
                };
                unit.directives.push(Directive { kind, prop, label });
            }
        }
        Ok(unit)
    }

    /// Property grammar with `->` right-associative and lowest precedence.
    fn prop(&mut self) -> Result<Prop, PslParseError> {
        let lhs = self.prop_term()?;
        if self.eat_punct("->") {
            let b = match lhs {
                Prop::Bool(b) => b,
                _ => return self.err("left side of '->' must be a boolean expression"),
            };
            let rhs = self.prop()?;
            return Ok(Prop::Implies(b, Box::new(rhs)));
        }
        if self.eat_kw("until") {
            let b1 = match lhs {
                Prop::Bool(b) => b,
                _ => return self.err("left side of 'until' must be a boolean expression"),
            };
            let b2 = self.bexpr_level(0)?;
            return self.maybe_abort(Prop::Until(b1, b2));
        }
        self.maybe_abort(lhs)
    }

    fn maybe_abort(&mut self, p: Prop) -> Result<Prop, PslParseError> {
        if self.eat_kw("abort") {
            let b = self.bexpr_level(0)?;
            Ok(Prop::Abort(Box::new(p), b))
        } else {
            Ok(p)
        }
    }

    fn prop_term(&mut self) -> Result<Prop, PslParseError> {
        if self.eat_kw("always") {
            let p = self.prop_term()?;
            // allow `always (b) -> ...`? No: always takes the full rest.
            let p = if self.eat_punct("->") {
                let b = match p {
                    Prop::Bool(b) => b,
                    _ => return self.err("left side of '->' must be boolean"),
                };
                Prop::Implies(b, Box::new(self.prop()?))
            } else if self.eat_kw("until") {
                let b1 = match p {
                    Prop::Bool(b) => b,
                    _ => return self.err("left side of 'until' must be boolean"),
                };
                Prop::Until(b1, self.bexpr_level(0)?)
            } else {
                p
            };
            return Ok(Prop::Always(Box::new(p)));
        }
        if self.eat_kw("never") {
            let p = self.prop_term()?;
            if !matches!(p, Prop::Bool(_) | Prop::Ref(_)) {
                return self.err("'never' takes a boolean expression");
            }
            return Ok(Prop::Never(Box::new(p)));
        }
        if self.eat_kw("next") {
            let k = if self.eat_punct("[") {
                let n = self.number()? as u32;
                self.expect_punct("]")?;
                n
            } else {
                1
            };
            let p = self.prop_term()?;
            return Ok(Prop::Next(k, Box::new(p)));
        }
        if self.eat_kw("eventually") {
            return self.err("liveness operator 'eventually!' is outside the supported safety subset");
        }
        // `(` could open a property or a boolean expression: try property
        // first (backtracking on pure-boolean results that continue as
        // boolean operators).
        if matches!(self.peek(), Tok::Punct("(")) {
            let save = self.pos;
            self.bump();
            let inner = self.prop()?;
            self.expect_punct(")")?;
            match inner {
                Prop::Bool(_) => {
                    // Might continue as a boolean expression, e.g. `(a) & b`.
                    if self.is_bool_continuation() {
                        self.pos = save;
                        let b = self.bexpr_level(0)?;
                        return Ok(Prop::Bool(b));
                    }
                    Ok(inner)
                }
                p => Ok(p),
            }
        } else {
            // Boolean atom or property reference.
            let save = self.pos;
            if let Tok::Ident(name) = self.peek().clone() {
                // A bare identifier followed by ; or ) is a property
                // reference if it is not obviously boolean — resolved at
                // compile time; the parser emits Ref for bare identifiers
                // in directive position and Bool elsewhere. We cannot know
                // here, so: bare ident followed by `;` or `)` parses as
                // Ref (compilation falls back to a net lookup).
                self.bump();
                if matches!(self.peek(), Tok::Punct(";") | Tok::Punct(")")) {
                    return Ok(Prop::Ref(name));
                }
                self.pos = save;
            }
            let b = self.bexpr_level(0)?;
            Ok(Prop::Bool(b))
        }
    }

    fn is_bool_continuation(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Punct("&") | Tok::Punct("|") | Tok::Punct("^") | Tok::Punct("==") | Tok::Punct("!=")
        )
    }

    /// Boolean-layer expression, precedence climbing:
    /// level 0: `|`, 1: `^`, 2: `&`, 3: `==`/`!=`, 4: unary.
    fn bexpr_level(&mut self, level: u32) -> Result<BExpr, PslParseError> {
        if level == 4 {
            return self.bexpr_unary();
        }
        let ops: &[&str] = match level {
            0 => &["|", "||"],
            1 => &["^"],
            2 => &["&", "&&"],
            3 => &["==", "!="],
            _ => unreachable!(),
        };
        let mut lhs = self.bexpr_level(level + 1)?;
        loop {
            let hit = match self.peek() {
                Tok::Punct(p) => ops.contains(p).then_some(*p),
                _ => None,
            };
            match hit {
                Some(op) => {
                    self.bump();
                    let rhs = self.bexpr_level(level + 1)?;
                    lhs = match op {
                        "|" | "||" => BExpr::Or(Box::new(lhs), Box::new(rhs)),
                        "^" => BExpr::Xor(Box::new(lhs), Box::new(rhs)),
                        "&" | "&&" => BExpr::And(Box::new(lhs), Box::new(rhs)),
                        "==" => BExpr::Eq(Box::new(lhs), Box::new(rhs)),
                        "!=" => BExpr::Ne(Box::new(lhs), Box::new(rhs)),
                        _ => unreachable!(),
                    };
                }
                None => return Ok(lhs),
            }
        }
    }

    fn bexpr_unary(&mut self) -> Result<BExpr, PslParseError> {
        if self.eat_punct("~") || self.eat_punct("!") {
            return Ok(BExpr::Not(Box::new(self.bexpr_unary()?)));
        }
        if self.eat_punct("^") {
            return Ok(BExpr::RedXor(Box::new(self.bexpr_unary()?)));
        }
        if self.eat_punct("&") {
            return Ok(BExpr::RedAnd(Box::new(self.bexpr_unary()?)));
        }
        if self.eat_punct("|") {
            return Ok(BExpr::RedOr(Box::new(self.bexpr_unary()?)));
        }
        self.bexpr_primary()
    }

    fn bexpr_primary(&mut self) -> Result<BExpr, PslParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct("[") {
                    let hi = self.number()? as u32;
                    if self.eat_punct(":") {
                        let lo = self.number()? as u32;
                        self.expect_punct("]")?;
                        Ok(BExpr::Range(name, hi, lo))
                    } else {
                        self.expect_punct("]")?;
                        Ok(BExpr::Index(name, hi))
                    }
                } else {
                    Ok(BExpr::Ident(name))
                }
            }
            Tok::Sized(w, v) => {
                self.bump();
                Ok(BExpr::Const(w, v))
            }
            Tok::Number(n) => {
                self.bump();
                // Unsized numbers in the boolean layer: 0 and 1 are 1-bit.
                if n > 1 {
                    return self.err("unsized literals other than 0/1 are not allowed in PSL expressions");
                }
                Ok(BExpr::Const(1, n))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.bexpr_level(0)?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected boolean expression, found '{other}'")),
        }
    }
}

fn kind_str(k: DirectiveKind) -> &'static str {
    match k {
        DirectiveKind::Assert => "assert",
        DirectiveKind::Assume => "assume",
        DirectiveKind::Restrict => "restrict",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2 of the paper (error-detection ability).
    const FIG2: &str = r#"
vunit M_edetect (M) { // check error detection ability
    property pCheck1 = always ((EC & ~(^ED)) -> next HE);
    assert pCheck1;
    property pCheck2 = always ( ~(^I) -> next HE);
    assert pCheck2;
}
"#;

    /// Figure 3 (soundness of internal states).
    const FIG3: &str = r#"
vunit M_soundness (M) {
    property pIntegrityI = always ( ^I );
    assume pIntegrityI;
    property pNoErrInjection = always ( ~EC );
    assume pNoErrInjection;
    property pNoError = never ( HE );
    assert pNoError;
}
"#;

    /// Figure 4 (output data integrity).
    const FIG4: &str = r#"
vunit M_integrity (M) {
    property pIntegrityI = always ( ^I );
    assume pIntegrityI;
    property pNoErrInjection = always ( ~EC );
    assume pNoErrInjection;
    property pIntegrityO = always ( ^O );
    assert pIntegrityO;
}
"#;

    #[test]
    fn figure2_parses() {
        let units = parse_psl(FIG2).unwrap();
        assert_eq!(units.len(), 1);
        let u = &units[0];
        assert_eq!(u.name, "M_edetect");
        assert_eq!(u.module, "M");
        assert_eq!(u.properties.len(), 2);
        assert_eq!(u.directives.len(), 2);
        // pCheck1: always ((EC & ~(^ED)) -> next HE)
        match &u.properties[0].1 {
            Prop::Always(inner) => match &**inner {
                Prop::Implies(_, next) => match &**next {
                    // Bare `HE` parses as a reference resolved at compile time.
                    Prop::Next(1, b) => assert!(matches!(**b, Prop::Bool(_) | Prop::Ref(_))),
                    other => panic!("expected next, got {other:?}"),
                },
                other => panic!("expected implication, got {other:?}"),
            },
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn figure3_parses() {
        let units = parse_psl(FIG3).unwrap();
        let u = &units[0];
        assert_eq!(u.directives.len(), 3);
        assert_eq!(u.directives[0].kind, DirectiveKind::Assume);
        assert_eq!(u.directives[2].kind, DirectiveKind::Assert);
        assert_eq!(u.directives[2].label, "pNoError");
        assert!(matches!(u.properties[2].1, Prop::Never(_)));
    }

    #[test]
    fn figure4_parses() {
        let units = parse_psl(FIG4).unwrap();
        assert_eq!(units[0].properties.len(), 3);
        // pIntegrityO = always (^O)
        match &units[0].properties[2].1 {
            Prop::Always(b) => assert!(matches!(**b, Prop::Bool(BExpr::RedXor(_)))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn next_with_count() {
        let src = "vunit v (M) { assert always (a -> next[3] b); }";
        let u = &parse_psl(src).unwrap()[0];
        match &u.directives[0].prop {
            Prop::Always(p) => match &**p {
                Prop::Implies(_, n) => assert!(matches!(**n, Prop::Next(3, _))),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn until_parses() {
        let src = "vunit v (M) { assert always (req -> next (busy until done)); }";
        let u = &parse_psl(src).unwrap()[0];
        match &u.directives[0].prop {
            Prop::Always(p) => match &**p {
                Prop::Implies(_, n) => match &**n {
                    Prop::Next(1, inner) => assert!(matches!(**inner, Prop::Until(_, _))),
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn abort_parses() {
        let src = "vunit v (M) { assert always ((req -> next ack) abort rst); }";
        let u = &parse_psl(src).unwrap()[0];
        match &u.directives[0].prop {
            Prop::Always(p) => assert!(matches!(**p, Prop::Abort(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn default_clock_ignored() {
        let src = "vunit v (M) { default clock = posedge CK ; assert always (a); }";
        let u = &parse_psl(src).unwrap()[0];
        assert_eq!(u.directives.len(), 1);
    }

    #[test]
    fn eventually_rejected() {
        let src = "vunit v (M) { assert eventually (a); }";
        let err = parse_psl(src).unwrap_err();
        assert!(err.message.contains("safety subset"));
    }

    #[test]
    fn bexpr_precedence() {
        let src = "vunit v (M) { assert always (a | b & c); }";
        let u = &parse_psl(src).unwrap()[0];
        match &u.directives[0].prop {
            Prop::Always(p) => match &**p {
                Prop::Bool(BExpr::Or(_, rhs)) => {
                    assert!(matches!(**rhs, BExpr::And(_, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directive_on_inline_property() {
        let src = "vunit v (M) { assume always (~EC); }";
        let u = &parse_psl(src).unwrap()[0];
        assert_eq!(u.directives[0].label, "assume_1");
    }

    #[test]
    fn index_and_slice_atoms() {
        let src = "vunit v (M) { assert always (EC[0] -> next (^D[7:4])); }";
        let u = &parse_psl(src).unwrap()[0];
        match &u.directives[0].prop {
            Prop::Always(p) => match &**p {
                Prop::Implies(BExpr::Index(n, 0), _) => assert_eq!(n, "EC"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
