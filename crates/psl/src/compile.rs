//! Compilation of PSL safety properties into monitor circuits.
//!
//! Every directive becomes a 1-bit *fail* net added to an instrumented
//! copy of the bound module: the net pulses high in exactly the cycles
//! where the property is violated. Model checking then reduces to
//! `never fail_assert` under the invariant constraints `!fail_assume` —
//! one uniform representation shared by the BDD, POBDD and SAT engines.
//!
//! The compilation scheme flattens each bounded-future formula into
//! *obligations* `(guards, delay, obligation)`; guards are piped through
//! shift registers so that an obligation fired `d` cycles after its
//! instance started is checked against guards observed at the right
//! times. `until` obligations get a one-bit pending automaton.

use crate::ast::*;
use std::error::Error;
use std::fmt;
use veridic_netlist::{Expr, ExprId, Module, NetId, Value};

/// PSL compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PslCompileError {
    /// The vunit being compiled.
    pub vunit: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for PslCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PSL compile error in vunit {}: {}", self.vunit, self.message)
    }
}

impl Error for PslCompileError {}

/// A compiled vunit: the instrumented module plus the fail nets.
#[derive(Clone, Debug)]
pub struct CompiledVUnit {
    /// Copy of the bound module extended with monitor logic.
    pub module: Module,
    /// `(label, fail_net)` for each assert directive: the property is
    /// `never fail_net`.
    pub asserts: Vec<(String, NetId)>,
    /// `(label, fail_net)` for each assume/restrict directive: paths where
    /// a fail net rises are excluded from the analysis.
    pub assumes: Vec<(String, NetId)>,
}

/// Compiles a vunit against its bound module.
///
/// # Errors
///
/// Returns a [`PslCompileError`] for unresolvable names, non-boolean
/// operands, unsupported liveness shapes, or a vunit bound to a different
/// module name.
pub fn compile_vunit(unit: &VUnit, module: &Module) -> Result<CompiledVUnit, PslCompileError> {
    Compiler {
        unit,
        m: module.clone(),
        gensym: 0,
    }
    .run()
}

struct Compiler<'a> {
    unit: &'a VUnit,
    m: Module,
    gensym: usize,
}

/// One flattened obligation of a formula.
#[derive(Clone, Debug)]
struct Obligation {
    /// `(delay, guard)` pairs: the guard must have held `total_delay -
    /// delay` cycles before the check.
    guards: Vec<(u32, ExprId)>,
    /// Delay (relative to instance start) at which the check happens.
    delay: u32,
    /// What must hold at `delay`.
    kind: ObKind,
    /// Abort conditions with the delays at which they begin to apply.
    aborts: Vec<ExprId>,
}

#[derive(Clone, Debug)]
enum ObKind {
    /// A boolean must be true.
    Bool(ExprId),
    /// `b1 until b2` starting at `delay`.
    Until(ExprId, ExprId),
}

impl<'a> Compiler<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, PslCompileError> {
        Err(PslCompileError { vunit: self.unit.name.clone(), message: m.into() })
    }

    fn run(mut self) -> Result<CompiledVUnit, PslCompileError> {
        if self.unit.module != self.m.name {
            return self.err(format!(
                "vunit binds module '{}' but was compiled against '{}'",
                self.unit.module, self.m.name
            ));
        }
        let mut asserts = Vec::new();
        let mut assumes = Vec::new();
        for d in &self.unit.directives {
            let fail = self.compile_prop(&d.prop, &d.label)?;
            match d.kind {
                DirectiveKind::Assert => asserts.push((d.label.clone(), fail)),
                DirectiveKind::Assume | DirectiveKind::Restrict => {
                    assumes.push((d.label.clone(), fail))
                }
            }
        }
        Ok(CompiledVUnit { module: self.m, asserts, assumes })
    }

    /// Compiles a top-level property to its fail net.
    fn compile_prop(&mut self, p: &Prop, label: &str) -> Result<NetId, PslCompileError> {
        let p = self.resolve(p)?;
        // Normalise the top: always(φ) and never(b) check instances every
        // cycle (never b ≡ always ¬b per the PSL LRM); anything else
        // checks the single instance starting at cycle 0.
        let (body, every_cycle) = match p {
            Prop::Always(inner) => (*inner, true),
            never @ Prop::Never(_) => (never, true),
            other => (other, false),
        };
        let mut obs = Vec::new();
        self.flatten(&body, Vec::new(), 0, Vec::new(), &mut obs)?;
        // fail = OR over obligations.
        let mut fails = Vec::new();
        for ob in &obs {
            fails.push(self.compile_obligation(ob, every_cycle)?);
        }
        let fail_expr = self.or_all(&fails);
        let name = format!("psl_fail_{}_{}", self.unit.name, label);
        let net = self.m.add_net(name, 1);
        self.m
            .net_mut(net)
            .attrs
            .insert("psl.monitor".into(), label.to_string());
        self.m.assign(net, fail_expr);
        Ok(net)
    }

    /// Resolves `Ref` nodes: named property if declared, else boolean net.
    fn resolve(&self, p: &Prop) -> Result<Prop, PslCompileError> {
        Ok(match p {
            Prop::Ref(name) => {
                if let Some((_, decl)) = self.unit.properties.iter().find(|(n, _)| n == name) {
                    self.resolve(decl)?
                } else if self.m.find_net(name).is_some() {
                    Prop::Bool(BExpr::Ident(name.clone()))
                } else {
                    return self.err(format!(
                        "'{name}' is neither a declared property nor a net of {}",
                        self.m.name
                    ));
                }
            }
            Prop::Always(i) => Prop::Always(Box::new(self.resolve(i)?)),
            Prop::Never(i) => Prop::Never(Box::new(self.resolve(i)?)),
            Prop::Next(k, i) => Prop::Next(*k, Box::new(self.resolve(i)?)),
            Prop::Implies(b, i) => Prop::Implies(b.clone(), Box::new(self.resolve(i)?)),
            Prop::Abort(i, b) => Prop::Abort(Box::new(self.resolve(i)?), b.clone()),
            Prop::And(a, b) => {
                Prop::And(Box::new(self.resolve(a)?), Box::new(self.resolve(b)?))
            }
            other => other.clone(),
        })
    }

    /// Flattens a bounded-future formula into obligations.
    fn flatten(
        &mut self,
        p: &Prop,
        guards: Vec<(u32, ExprId)>,
        delay: u32,
        aborts: Vec<ExprId>,
        out: &mut Vec<Obligation>,
    ) -> Result<(), PslCompileError> {
        match p {
            Prop::Bool(b) => {
                let e = self.bexpr_bool(b)?;
                out.push(Obligation { guards, delay, kind: ObKind::Bool(e), aborts });
                Ok(())
            }
            Prop::Never(inner) => {
                // never b == always !b at this position; treat as !b now.
                match &**inner {
                    Prop::Bool(b) => {
                        let e = self.bexpr_bool(b)?;
                        let ne = self.m.arena.add(Expr::Not(e));
                        out.push(Obligation { guards, delay, kind: ObKind::Bool(ne), aborts });
                        Ok(())
                    }
                    _ => self.err("'never' takes a boolean"),
                }
            }
            Prop::Implies(b, rest) => {
                let e = self.bexpr_bool(b)?;
                let mut g = guards;
                g.push((delay, e));
                self.flatten(rest, g, delay, aborts, out)
            }
            Prop::Next(k, rest) => self.flatten(rest, guards, delay + k, aborts, out),
            Prop::And(a, b) => {
                self.flatten(a, guards.clone(), delay, aborts.clone(), out)?;
                self.flatten(b, guards, delay, aborts, out)
            }
            Prop::Until(b1, b2) => {
                let e1 = self.bexpr_bool(b1)?;
                let e2 = self.bexpr_bool(b2)?;
                out.push(Obligation { guards, delay, kind: ObKind::Until(e1, e2), aborts });
                Ok(())
            }
            Prop::Abort(inner, b) => {
                let e = self.bexpr_bool(b)?;
                let mut a = aborts;
                a.push(e);
                self.flatten(inner, guards, delay, a, out)
            }
            Prop::Always(_) => {
                self.err("nested 'always' is not supported (hoist it to the top level)")
            }
            Prop::Ref(_) => unreachable!("refs resolved before flattening"),
        }
    }

    /// Builds the fail net of one obligation.
    fn compile_obligation(
        &mut self,
        ob: &Obligation,
        every_cycle: bool,
    ) -> Result<ExprId, PslCompileError> {
        let d_o = ob.delay;
        // start(t): all guards held at their offsets, and (for single-
        // instance properties) the instance is the one that began at 0.
        let mut conj: Vec<ExprId> = Vec::new();
        for (d_i, g) in &ob.guards {
            debug_assert!(*d_i <= d_o);
            let delayed = self.delayed(*g, d_o - d_i);
            conj.push(delayed);
        }
        if !every_cycle {
            let at = self.at_time(d_o);
            conj.push(at);
        }
        // Abort: obligation cancelled if the abort signal held at any point
        // since the instance started. Conservative safety approximation:
        // cancel when the abort signal holds now or held in the window.
        for a in &ob.aborts {
            let mut any = *a;
            for k in 1..=d_o {
                let past = self.delayed(*a, k);
                any = self.m.arena.add(Expr::Or(any, past));
            }
            let not_aborted = self.m.arena.add(Expr::Not(any));
            conj.push(not_aborted);
        }
        let armed = self.and_all(&conj);
        match &ob.kind {
            ObKind::Bool(b) => {
                let nb = self.m.arena.add(Expr::Not(*b));
                Ok(self.m.arena.add(Expr::And(armed, nb)))
            }
            ObKind::Until(b1, b2) => {
                // pending automaton: alive = armed | carry;
                // carry' = alive & !b2; fail = alive & !b1 & !b2.
                let carry = self.fresh_reg("psl_until");
                let carry_sig = self.m.sig(carry);
                let alive = self.m.arena.add(Expr::Or(armed, carry_sig));
                let nb2 = self.m.arena.add(Expr::Not(*b2));
                let carry_next = self.m.arena.add(Expr::And(alive, nb2));
                let reg_net = carry;
                // Overwrite the placeholder next-state.
                let idx = self
                    .m
                    .regs
                    .iter()
                    .position(|r| r.q == reg_net)
                    .expect("register just added");
                self.m.regs[idx].next = carry_next;
                let nb1 = self.m.arena.add(Expr::Not(*b1));
                let viol = self.m.arena.add(Expr::And(nb1, nb2));
                Ok(self.m.arena.add(Expr::And(alive, viol)))
            }
        }
    }

    /// `x` delayed by `k` cycles through a fresh register chain (zeros
    /// before time `k`).
    fn delayed(&mut self, x: ExprId, k: u32) -> ExprId {
        let mut cur = x;
        for _ in 0..k {
            let q = self.fresh_reg("psl_dly");
            self.m.add_reg(q, cur, Value::zero(1));
            cur = self.m.sig(q);
        }
        cur
    }

    /// A net that is 1 exactly in cycle `k` (0-based from reset).
    fn at_time(&mut self, k: u32) -> ExprId {
        // r0: init 1, next 0. r_{i}: init 0, next r_{i-1}.
        let q0 = self.fresh_reg("psl_t0");
        let zero = self.m.arena.add(Expr::Const(Value::zero(1)));
        self.m.add_reg(q0, zero, Value::from_u64(1, 1));
        let mut cur = self.m.sig(q0);
        for _ in 0..k {
            let q = self.fresh_reg("psl_t");
            self.m.add_reg(q, cur, Value::zero(1));
            cur = self.m.sig(q);
        }
        cur
    }

    /// Allocates a fresh 1-bit net for a monitor register; next-state is
    /// set by the caller (via `add_reg` or patching).
    fn fresh_reg(&mut self, prefix: &str) -> NetId {
        let name = format!("{prefix}_{}_{}", self.unit.name, self.gensym);
        self.gensym += 1;
        let q = self.m.add_net(name, 1);
        if prefix == "psl_until" {
            // Placeholder register patched by the caller.
            let zero = self.m.arena.add(Expr::Const(Value::zero(1)));
            self.m.add_reg(q, zero, Value::zero(1));
        }
        q
    }

    fn and_all(&mut self, xs: &[ExprId]) -> ExprId {
        match xs.len() {
            0 => self.m.arena.add(Expr::Const(Value::from_u64(1, 1))),
            _ => {
                let mut acc = xs[0];
                for x in &xs[1..] {
                    acc = self.m.arena.add(Expr::And(acc, *x));
                }
                acc
            }
        }
    }

    fn or_all(&mut self, xs: &[ExprId]) -> ExprId {
        match xs.len() {
            0 => self.m.arena.add(Expr::Const(Value::zero(1))),
            _ => {
                let mut acc = xs[0];
                for x in &xs[1..] {
                    acc = self.m.arena.add(Expr::Or(acc, *x));
                }
                acc
            }
        }
    }

    /// Elaborates a boolean-layer expression to a 1-bit netlist expr.
    fn bexpr_bool(&mut self, b: &BExpr) -> Result<ExprId, PslCompileError> {
        let e = self.bexpr(b)?;
        Ok(if self.m.arena.width(e) == 1 {
            e
        } else {
            self.m.arena.add(Expr::RedOr(e))
        })
    }

    /// Elaborates a boolean-layer expression (any width).
    fn bexpr(&mut self, b: &BExpr) -> Result<ExprId, PslCompileError> {
        Ok(match b {
            BExpr::Ident(name) => {
                let net = self.net(name)?;
                self.m.sig(net)
            }
            BExpr::Index(name, i) => {
                let net = self.net(name)?;
                let w = self.m.net_width(net);
                if *i >= w {
                    return self.err(format!("bit {i} out of range for '{name}' (width {w})"));
                }
                self.m.sig_bit(net, *i)
            }
            BExpr::Range(name, hi, lo) => {
                let net = self.net(name)?;
                let w = self.m.net_width(net);
                if *hi >= w || lo > hi {
                    return self.err(format!("[{hi}:{lo}] out of range for '{name}' (width {w})"));
                }
                let s = self.m.sig(net);
                self.m.arena.add(Expr::Slice(s, *hi, *lo))
            }
            BExpr::Const(w, v) => self.m.arena.add(Expr::Const(Value::from_u64(*w, *v))),
            BExpr::Not(inner) => {
                let e = self.bexpr(inner)?;
                if self.m.arena.width(e) == 1 {
                    self.m.arena.add(Expr::Not(e))
                } else {
                    // Logical not of a wide value.
                    let r = self.m.arena.add(Expr::RedOr(e));
                    self.m.arena.add(Expr::Not(r))
                }
            }
            BExpr::RedXor(inner) => {
                let e = self.bexpr(inner)?;
                self.m.arena.add(Expr::RedXor(e))
            }
            BExpr::RedAnd(inner) => {
                let e = self.bexpr(inner)?;
                self.m.arena.add(Expr::RedAnd(e))
            }
            BExpr::RedOr(inner) => {
                let e = self.bexpr(inner)?;
                self.m.arena.add(Expr::RedOr(e))
            }
            BExpr::And(a, b) => self.bin(a, b, Expr::And)?,
            BExpr::Or(a, b) => self.bin(a, b, Expr::Or)?,
            BExpr::Xor(a, b) => self.bin(a, b, Expr::Xor)?,
            BExpr::Eq(a, b) => self.bin(a, b, Expr::Eq)?,
            BExpr::Ne(a, b) => self.bin(a, b, Expr::Ne)?,
        })
    }

    fn bin(
        &mut self,
        a: &BExpr,
        b: &BExpr,
        mk: fn(ExprId, ExprId) -> Expr,
    ) -> Result<ExprId, PslCompileError> {
        let ea = self.bexpr(a)?;
        let eb = self.bexpr(b)?;
        let (wa, wb) = (self.m.arena.width(ea), self.m.arena.width(eb));
        let (ea, eb) = if wa == wb {
            (ea, eb)
        } else if wa == 1 {
            let rb = self.m.arena.add(Expr::RedOr(eb));
            (ea, rb)
        } else if wb == 1 {
            let ra = self.m.arena.add(Expr::RedOr(ea));
            (ra, eb)
        } else {
            return self.err(format!("width mismatch in PSL expression: {wa} vs {wb}"));
        };
        Ok(self.m.arena.add(mk(ea, eb)))
    }

    fn net(&self, name: &str) -> Result<NetId, PslCompileError> {
        self.m.find_net(name).ok_or_else(|| PslCompileError {
            vunit: self.unit.name.clone(),
            message: format!("module {} has no net '{name}'", self.m.name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_psl;
    use std::collections::BTreeMap;
    use veridic_netlist::PortDir;

    /// A module matching Figure 1's abstraction: FSM state A with odd
    /// parity, EC/ED injection, HE report, parity-protected input I and
    /// output O.
    fn leaf_module() -> Module {
        let mut m = Module::new("M");
        let i = m.add_port("I", PortDir::Input, 4); // odd-parity input
        let ec = m.add_port("EC", PortDir::Input, 1);
        let ed = m.add_port("ED", PortDir::Input, 4);
        let he = m.add_port("HE", PortDir::Output, 1);
        let o = m.add_port("O", PortDir::Output, 4);
        // state A: 4 bits incl. parity, reset 0b1000 (odd).
        let a = m.add_net("A", 4);
        let si = m.sig(i);
        let sec = m.sig(ec);
        let sed = m.sig(ed);
        let sa = m.sig(a);
        // next A: if EC inject ED else rotate-ish update that keeps parity:
        // xor with input parity-neutral function; simplest: A stays.
        let next_a = m.arena.add(Expr::Mux { cond: sec, then_: sed, else_: sa });
        m.add_reg(a, next_a, Value::from_u64(4, 0b1000));
        // Check1 (combinational on state A): fires the cycle after an
        // injection corrupted A. Check2 (registered input check): fires the
        // cycle after an even-parity I. HE = Check1 | Check2_q.
        let pa = m.arena.add(Expr::RedXor(sa));
        let bad_a = m.arena.add(Expr::Not(pa));
        let pi = m.arena.add(Expr::RedXor(si));
        let bad_i = m.arena.add(Expr::Not(pi));
        let he_q = m.add_net("HE_q", 1);
        m.add_reg(he_q, bad_i, Value::zero(1));
        let she = m.sig(he_q);
        let he_all = m.arena.add(Expr::Or(bad_a, she));
        m.assign(he, he_all);
        // O: pass A through (keeps odd parity in normal operation).
        let sa2 = m.sig(a);
        m.assign(o, sa2);
        m.validate().unwrap();
        m
    }

    const FIG2: &str = r#"
vunit M_edetect (M) {
    property pCheck1 = always ((EC & ~(^ED)) -> next HE);
    assert pCheck1;
    property pCheck2 = always ( ~(^I) -> next HE);
    assert pCheck2;
}
"#;

    const FIG3: &str = r#"
vunit M_soundness (M) {
    property pIntegrityI = always ( ^I );
    assume pIntegrityI;
    property pNoErrInjection = always ( ~EC );
    assume pNoErrInjection;
    property pNoError = never ( HE );
    assert pNoError;
}
"#;

    fn run_monitor(
        cv: &CompiledVUnit,
        inputs: &[(&str, u64)],
        cycles: usize,
    ) -> Vec<BTreeMap<String, bool>> {
        // Simulate the instrumented module via its AIG.
        let lowered = cv.module.to_aig().unwrap();
        let mut input_seq = Vec::new();
        for _ in 0..cycles {
            let mut frame = vec![false; lowered.aig.num_inputs()];
            for (name, val) in inputs {
                let net = cv.module.find_net(name).unwrap();
                let w = cv.module.net_width(net);
                for b in 0..w {
                    if let Some(var) = lowered.input_vars.get(&(net, b)) {
                        let idx = lowered.aig.input_index(*var).unwrap();
                        frame[idx] = val >> b & 1 == 1;
                    }
                }
            }
            input_seq.push(frame);
        }
        // Track fail nets by adding them as outputs.
        let mut aig = lowered.aig.clone();
        let mut fail_names = Vec::new();
        for (label, net) in cv.asserts.iter().chain(&cv.assumes) {
            let lit = lowered.bit(*net, 0);
            aig.add_output(format!("fail_{label}"), lit);
            fail_names.push(format!("fail_{label}"));
        }
        let base_outputs = lowered.aig.outputs().len();
        aig.simulate(&input_seq)
            .into_iter()
            .map(|rep| {
                fail_names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), rep.outputs[base_outputs + i]))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn figure2_monitors_fire_correctly() {
        let m = leaf_module();
        let units = parse_psl(FIG2).unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        assert_eq!(cv.asserts.len(), 2);
        // Clean run (odd-parity I, no injection): no fails.
        let reports = run_monitor(&cv, &[("I", 0b0001), ("EC", 0), ("ED", 0)], 6);
        for rep in &reports {
            assert!(rep.values().all(|v| !v), "spurious failure: {rep:?}");
        }
        // Inject an even-parity (illegal) value: HE rises next cycle, so
        // pCheck1 must NOT fail; the design is correct.
        let reports = run_monitor(&cv, &[("I", 0b0001), ("EC", 1), ("ED", 0b0011)], 6);
        for rep in &reports {
            assert!(!rep["fail_pCheck1"], "pCheck1 must hold on correct design");
        }
        // Drive an even-parity input: pCheck2 holds too (HE reports it).
        let reports = run_monitor(&cv, &[("I", 0b0011), ("EC", 0), ("ED", 0)], 6);
        for rep in &reports {
            assert!(!rep["fail_pCheck2"], "pCheck2 must hold on correct design");
        }
    }

    #[test]
    fn broken_design_fails_check1() {
        // Break the design: HE only reflects the input check, the state
        // check is dropped (detection-ability bug).
        let mut m = leaf_module();
        let he = m.find_port("HE").unwrap().net;
        let he_q = m.find_net("HE_q").unwrap();
        let idx = m.assigns.iter().position(|(n, _)| *n == he).unwrap();
        let she = m.sig(he_q);
        m.assigns[idx].1 = she;
        let units = parse_psl(FIG2).unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        let reports = run_monitor(&cv, &[("I", 0b0001), ("EC", 1), ("ED", 0b0011)], 4);
        // EC=1 with even-parity ED from cycle 0: fail at cycle 1.
        assert!(reports[1]["fail_pCheck1"], "broken design must fail pCheck1");
    }

    #[test]
    fn figure3_soundness_monitors() {
        let m = leaf_module();
        let units = parse_psl(FIG3).unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        assert_eq!(cv.asserts.len(), 1);
        assert_eq!(cv.assumes.len(), 2);
        // Clean inputs: no assume violations, no assert violations.
        let reports = run_monitor(&cv, &[("I", 0b0001), ("EC", 0)], 5);
        for rep in &reports {
            assert!(rep.values().all(|v| !v), "unexpected failure: {rep:?}");
        }
        // Even-parity input violates the assumption pIntegrityI.
        let reports = run_monitor(&cv, &[("I", 0b0011), ("EC", 0)], 3);
        assert!(reports[0]["fail_pIntegrityI"]);
    }

    #[test]
    fn next_k_delays_check() {
        let mut m = Module::new("M");
        let a = m.add_port("a", PortDir::Input, 1);
        let y = m.add_port("y", PortDir::Output, 1);
        let sa = m.sig(a);
        // y = a delayed by 2 registers.
        let q1 = m.add_net("q1", 1);
        m.add_reg(q1, sa, Value::zero(1));
        let s1 = m.sig(q1);
        let q2 = m.add_net("q2", 1);
        m.add_reg(q2, s1, Value::zero(1));
        let s2 = m.sig(q2);
        m.assign(y, s2);
        let units = parse_psl("vunit v (M) { assert always (a -> next[2] y); }").unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        // Correct design: never fails.
        let reports = run_monitor(&cv, &[("a", 1)], 6);
        for rep in &reports {
            assert!(rep.values().all(|v| !v));
        }
        // Wrong spec: next[1] must fail.
        let units = parse_psl("vunit v (M) { assert always (a -> next y); }").unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        let reports = run_monitor(&cv, &[("a", 1)], 4);
        assert!(reports[1].values().any(|v| *v), "late y must fail next[1] check");
    }

    #[test]
    fn until_monitor() {
        // busy until done: busy stays high until done arrives.
        let mut m = Module::new("M");
        let req = m.add_port("req", PortDir::Input, 1);
        let busy = m.add_port("busy", PortDir::Input, 1);
        let done = m.add_port("done", PortDir::Input, 1);
        let y = m.add_port("y", PortDir::Output, 1);
        let sreq = m.sig(req);
        m.assign(y, sreq);
        let _ = (busy, done);
        let units =
            parse_psl("vunit v (M) { assert always (req -> next (busy until done)); }").unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        // Good trace: req at 0; busy 1..2; done at 3.
        let lowered_inputs = |reqv: &[u64], busyv: &[u64], donev: &[u64]| -> Vec<Vec<(&str, u64)>> {
            (0..reqv.len())
                .map(|k| vec![("req", reqv[k]), ("busy", busyv[k]), ("done", donev[k])])
                .collect()
        };
        let run = |frames: Vec<Vec<(&str, u64)>>| -> Vec<bool> {
            let lowered = cv.module.to_aig().unwrap();
            let mut aig = lowered.aig.clone();
            let lit = lowered.bit(cv.asserts[0].1, 0);
            aig.add_output("fail", lit);
            let base = lowered.aig.outputs().len();
            let seq: Vec<Vec<bool>> = frames
                .iter()
                .map(|frame| {
                    let mut f = vec![false; aig.num_inputs()];
                    for (name, val) in frame {
                        let net = cv.module.find_net(name).unwrap();
                        if let Some(var) = lowered.input_vars.get(&(net, 0)) {
                            f[aig.input_index(*var).unwrap()] = *val == 1;
                        }
                    }
                    f
                })
                .collect();
            aig.simulate(&seq).into_iter().map(|r| r.outputs[base]).collect()
        };
        let good = run(lowered_inputs(
            &[1, 0, 0, 0, 0],
            &[0, 1, 1, 0, 0],
            &[0, 0, 0, 1, 0],
        ));
        assert!(good.iter().all(|f| !f), "good trace must not fail: {good:?}");
        // Bad trace: busy drops at cycle 2 without done.
        let bad = run(lowered_inputs(
            &[1, 0, 0, 0, 0],
            &[0, 1, 0, 0, 0],
            &[0, 0, 0, 0, 0],
        ));
        assert!(bad[2], "busy dropped without done must fail: {bad:?}");
    }

    #[test]
    fn never_checks_every_cycle_not_just_cycle_zero() {
        // Regression: `never b` must fail when b first rises at cycle
        // k > 0 (it compiles to always ¬b, not a time-zero check).
        let mut m = Module::new("M");
        let y = m.add_port("y", PortDir::Output, 1);
        // q rises at cycle 2: chain of two registers seeded by constant 1.
        let one = m.arena.add(Expr::Const(Value::from_u64(1, 1)));
        let q1 = m.add_net("q1", 1);
        m.add_reg(q1, one, Value::zero(1));
        let s1 = m.sig(q1);
        let q2 = m.add_net("q2", 1);
        m.add_reg(q2, s1, Value::zero(1));
        let s2 = m.sig(q2);
        m.assign(y, s2);
        let units = parse_psl("vunit v (M) { assert never (y); }").unwrap();
        let cv = compile_vunit(&units[0], &m).unwrap();
        let reports = run_monitor(&cv, &[], 4);
        assert!(!reports[0].values().any(|v| *v), "clean at cycle 0");
        assert!(!reports[1].values().any(|v| *v), "clean at cycle 1");
        assert!(
            reports[2].values().any(|v| *v),
            "never(y) must fail when y rises at cycle 2: {reports:?}"
        );
    }

    #[test]
    fn unknown_net_is_error() {
        let m = leaf_module();
        let units = parse_psl("vunit v (M) { assert always (NO_SUCH_NET); }").unwrap();
        let err = compile_vunit(&units[0], &m).unwrap_err();
        assert!(err.message.contains("NO_SUCH_NET"));
    }

    #[test]
    fn wrong_module_binding_is_error() {
        let m = leaf_module();
        let units = parse_psl("vunit v (OTHER) { assert always (HE); }").unwrap();
        assert!(compile_vunit(&units[0], &m).is_err());
    }
}
