//! # veridic-psl
//!
//! A Property Specification Language (PSL) frontend for the safety subset
//! used by the paper's data-integrity methodology: `vunit` binding,
//! `property` declarations, `assert`/`assume`/`restrict` directives, and
//! the temporal operators `always`, `never`, `next[k]`, `->`, weak
//! `until` and `abort` over a Verilog-flavoured boolean layer (including
//! the parity reduction `^x` that carries the whole methodology).
//!
//! Properties compile to *monitor circuits*: each directive becomes a
//! 1-bit fail net woven into a copy of the bound module, so every formal
//! engine (BDD, POBDD, SAT) checks the same uniform representation:
//! `never fail` under invariant constraints.
//!
//! ```
//! use veridic_psl::{parse_psl, compile_vunit};
//! use veridic_netlist::{Module, PortDir, Expr};
//!
//! let mut m = Module::new("M");
//! let he = m.add_port("HE", PortDir::Input, 1);
//! let y = m.add_port("y", PortDir::Output, 1);
//! let s = m.sig(he);
//! m.assign(y, s);
//!
//! let units = parse_psl("vunit M_check (M) { assert never (HE); }")?;
//! let compiled = compile_vunit(&units[0], &m)?;
//! assert_eq!(compiled.asserts.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
mod parser;

pub use ast::{BExpr, Directive, DirectiveKind, Prop, VUnit};
pub use compile::{compile_vunit, CompiledVUnit, PslCompileError};
pub use parser::{parse_psl, PslParseError};
