//! PSL abstract syntax: vunits, directives and the temporal layer.

/// A PSL verification unit bound to a module, e.g.
/// `vunit M_edetect (M) { ... }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VUnit {
    /// The vunit's name.
    pub name: String,
    /// The module the vunit binds to.
    pub module: String,
    /// Named property declarations, in order.
    pub properties: Vec<(String, Prop)>,
    /// Verification directives, in order.
    pub directives: Vec<Directive>,
}

/// A verification directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Directive {
    /// Kind keyword.
    pub kind: DirectiveKind,
    /// The property: a reference to a declared name or an inline property.
    pub prop: Prop,
    /// Label for reporting: the referenced name, or `<kind>_<index>`.
    pub label: String,
}

/// Directive kinds. `restrict` behaves as `assume` during model checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectiveKind {
    /// The property must hold; model check it.
    Assert,
    /// The property constrains the environment.
    Assume,
    /// Like assume (input-space restriction).
    Restrict,
}

/// The temporal (foundation language) layer — the safety subset used by
/// the paper's three stereotype properties plus weak `until`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop {
    /// `always p`
    Always(Box<Prop>),
    /// `never b` (boolean argument; a bare name resolves at compile time)
    Never(Box<Prop>),
    /// `next p` / `next[k] p`
    Next(u32, Box<Prop>),
    /// `b -> p`
    Implies(BExpr, Box<Prop>),
    /// `b1 until b2` (weak)
    Until(BExpr, BExpr),
    /// `p abort b` — obligation cancelled when `b` holds.
    Abort(Box<Prop>, BExpr),
    /// Conjunction of properties.
    And(Box<Prop>, Box<Prop>),
    /// Boolean layer expression.
    Bool(BExpr),
    /// Reference to a named property in the same vunit.
    Ref(String),
}

/// The boolean layer: HDL expressions over the bound module's nets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BExpr {
    /// Net reference.
    Ident(String),
    /// Bit select `x[i]`.
    Index(String, u32),
    /// Part select `x[msb:lsb]`.
    Range(String, u32, u32),
    /// Sized constant.
    Const(u32, u64),
    /// `!b` / `~b` (logical and bitwise negation coincide at 1 bit; wider
    /// operands are reduced first for `!`).
    Not(Box<BExpr>),
    /// Reduction XOR `^x` (parity — the workhorse of the paper).
    RedXor(Box<BExpr>),
    /// Reduction AND `&x`.
    RedAnd(Box<BExpr>),
    /// Reduction OR `|x`.
    RedOr(Box<BExpr>),
    /// Bitwise/logical AND.
    And(Box<BExpr>, Box<BExpr>),
    /// Bitwise/logical OR.
    Or(Box<BExpr>, Box<BExpr>),
    /// Bitwise XOR.
    Xor(Box<BExpr>, Box<BExpr>),
    /// Equality.
    Eq(Box<BExpr>, Box<BExpr>),
    /// Inequality.
    Ne(Box<BExpr>, Box<BExpr>),
}
