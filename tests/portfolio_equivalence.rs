//! The portfolio safety net: `Portfolio::default()` must be
//! deterministic run-to-run, its SAT-only and BDD-only halves must
//! agree with the full cascade on every verdict and counterexample
//! depth, and turning on dynamic variable reordering must be
//! verdict-neutral. (The byte-for-byte diff against the pre-redesign
//! cascade retired with `veridic::mc::legacy` after PR 6 — the
//! properties it pinned live on here as self-consistency contracts.)
//!
//! Three layers:
//! * a proptest over random small sequential designs,
//! * a proptest over random chipgen leaf-module properties (the real
//!   workload shape: stereotype vunits, assumes, multi-bad AIGs),
//! * the full small-chip campaign, record by record, Table-2 rendering
//!   included.

use proptest::prelude::*;
use veridic::mc::BddEngineOutcome;
use veridic::prelude::*;

/// Self-consistency on one AIG:
/// * repeat runs are identical down to every statistic,
/// * the SAT-only and BDD-only halves agree with the full cascade on
///   verdict and counterexample depth (a half may resource out —
///   fewer engines — but may not conclude differently),
/// * enabling `dynamic_reorder` changes no verdict, depth, or
///   iteration count.
fn assert_self_consistent(aig: &Aig, opts: &CheckOptions, what: &str) {
    let first = Portfolio::default().check(aig, opts);
    let again = Portfolio::default().check(aig, opts);
    assert_eq!(first.verdict, again.verdict, "verdict drifted between runs on {what}");
    assert_eq!(first.stats, again.stats, "stats drifted between runs on {what}");
    assert_eq!(
        first.stats.engines_tried(),
        again.stats.engines_tried(),
        "engine-log rendering drifted on {what}"
    );

    if !(opts.bdd_only || opts.sat_only) {
        for restricted in [
            CheckOptions { bdd_only: true, ..opts.clone() },
            CheckOptions { sat_only: true, ..opts.clone() },
        ] {
            let half = Portfolio::default().check(aig, &restricted);
            match (&first.verdict, &half.verdict) {
                (Verdict::Falsified(a), Verdict::Falsified(b)) => {
                    assert_eq!(a.len(), b.len(), "cex depth diverged on {what}");
                    assert_eq!(a.bad_index, b.bad_index, "bad index diverged on {what}");
                }
                (Verdict::Proved { .. }, Verdict::Proved { .. }) => {}
                (_, Verdict::ResourceOut { .. }) => {}
                (a, b) => panic!("portfolio halves disagree on {what}: {a:?} vs {b:?}"),
            }
        }
    }

    // Dynamic reordering is a performance knob, never a semantic one.
    let sifted =
        Portfolio::default().check(aig, &CheckOptions { dynamic_reorder: true, ..opts.clone() });
    assert_eq!(first.verdict, sifted.verdict, "dynamic_reorder changed the verdict on {what}");
    assert_eq!(
        first.stats.iterations, sifted.stats.iterations,
        "dynamic_reorder changed the round count on {what}"
    );
}

// ---------------------------------------------------------------------
// Random small sequential designs.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Design {
    Counter { bits: u32, bad_at: u64 },
    ShiftXor { bits: u32, taps: u64, bad_mask: u64 },
    Stuck { bits: u32 },
}

fn build(design: &Design) -> Aig {
    let mut g = Aig::new();
    let counter = |g: &mut Aig, bits: u32| -> Vec<veridic::aig::Lit> {
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = veridic::aig::Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        qs.into_iter().map(|(_, q)| q).collect()
    };
    let state_match = |g: &mut Aig, qs: &[veridic::aig::Lit], mask: u64| {
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| if mask >> i & 1 == 1 { *q } else { !*q })
            .collect();
        g.and_many(hit)
    };
    match design {
        Design::Counter { bits, bad_at } => {
            let qs = counter(&mut g, *bits);
            let bad = state_match(&mut g, &qs, bad_at & ((1 << bits) - 1));
            g.add_bad("count_hit", bad);
        }
        Design::ShiftXor { bits, taps, bad_mask } => {
            let bits = *bits as usize;
            let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("s{i}"), i == 0)).collect();
            let mut fb = qs[bits - 1].1;
            for (i, (_, q)) in qs.iter().enumerate().take(bits - 1) {
                if taps >> i & 1 == 1 {
                    fb = g.xor(fb, *q);
                }
            }
            for i in (1..bits).rev() {
                g.set_next(qs[i].0, qs[i - 1].1);
            }
            g.set_next(qs[0].0, fb);
            let lits: Vec<_> = qs.iter().map(|(_, q)| *q).collect();
            let bad = state_match(&mut g, &lits, bad_mask & ((1 << bits) - 1));
            g.add_bad("state_hit", bad);
        }
        Design::Stuck { bits } => {
            let qs = counter(&mut g, *bits);
            let (l, s) = g.latch("stuck", false);
            g.set_next(l, s);
            // Entangle with the counter so the COI keeps it.
            let full = state_match(&mut g, &qs, (1 << bits) - 1);
            let bad = g.and(s, full);
            g.add_bad("never", bad);
        }
    }
    g
}

fn design_strategy() -> impl Strategy<Value = Design> {
    prop_oneof![
        (2u32..5, 0u64..32).prop_map(|(bits, bad_at)| Design::Counter { bits, bad_at }),
        (3u32..6, 0u64..32, 0u64..64)
            .prop_map(|(bits, taps, bad_mask)| Design::ShiftXor { bits, taps, bad_mask }),
        (2u32..5, 0u64..1).prop_map(|(bits, _)| Design::Stuck { bits }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The self-consistency contract on random designs, across the
    /// option axes the default policy gates on.
    #[test]
    fn portfolio_is_self_consistent_on_random_designs(
        design in design_strategy(),
        mode in 0u32..3,
    ) {
        let aig = build(&design);
        let opts = match mode {
            0 => CheckOptions::default(),
            1 => CheckOptions::builder().bdd_only(true).build(),
            _ => CheckOptions::builder().sat_only(true).build(),
        };
        assert_self_consistent(&aig, &opts, &format!("{design:?} mode={mode}"));
    }

    /// The same contract on the real workload shape: a random chipgen
    /// leaf module (from the clean or the bug-seeded chip), one of its
    /// stereotype vunits, every assert of that vunit.
    #[test]
    fn portfolio_is_self_consistent_on_chipgen_properties(
        module_idx in 0usize..32,
        bug_coin in 0u32..2,
        vunit_idx in 0usize..4,
    ) {
        let with_bugs = bug_coin == 1;
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs });
        let modules = chip.modules();
        let mi = &modules[module_idx % modules.len()];
        let module = chip.design().module(mi.name()).unwrap();
        let vm = make_verifiable(module).unwrap();
        let vunits = generate_all(&vm).unwrap();
        let (_, compiled) = &vunits[vunit_idx % vunits.len()];
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        assert_self_consistent(&aig, &CheckOptions::default(), &format!(
            "{}:{} with_bugs={with_bugs}", mi.name(), vunit_idx
        ));
    }
}

// ---------------------------------------------------------------------
// The full campaign.
// ---------------------------------------------------------------------

/// The campaign over the full (buggy) small chip is deterministic
/// record-for-record — verdicts, stats, engine-log rendering and the
/// rendered Table 2 — and switching dynamic reordering on changes no
/// verdict and no counterexample depth anywhere in the chip.
#[test]
fn full_campaign_is_deterministic_and_reorder_neutral() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let opts = CheckOptions::default();
    let report = run_campaign(&chip, &CampaignConfig { check: opts.clone(), workers: 0 });
    let replay = run_campaign(&chip, &CampaignConfig { check: opts.clone(), workers: 0 });

    assert_eq!(report.records.len(), replay.records.len());
    for (rec, rep) in report.records.iter().zip(&replay.records) {
        let what = format!("{}/{}", rec.module, rec.label);
        assert_eq!(rec.module, rep.module, "record order diverged at {what}");
        assert_eq!(rec.label, rep.label, "record order diverged at {what}");
        assert_eq!(rec.verdict, rep.verdict, "verdict diverged at {what}");
        assert_eq!(rec.stats, rep.stats, "stats diverged at {what}");
        assert_eq!(
            rec.stats.engines_tried(),
            rep.stats.engines_tried(),
            "engine log diverged at {what}"
        );
    }
    assert_eq!(report.render_table2(&chip), replay.render_table2(&chip));

    // Reorder neutrality across the whole campaign: identical verdicts
    // and depths, identical Table 2 (which renders verdict columns, not
    // node counts).
    let sifted_opts = CheckOptions::builder().dynamic_reorder(true).build();
    let sifted = run_campaign(&chip, &CampaignConfig { check: sifted_opts, workers: 0 });
    assert_eq!(report.records.len(), sifted.records.len());
    for (rec, s) in report.records.iter().zip(&sifted.records) {
        let what = format!("{}/{}", rec.module, rec.label);
        assert_eq!(rec.verdict, s.verdict, "dynamic_reorder changed the verdict at {what}");
        assert_eq!(
            rec.stats.iterations, s.stats.iterations,
            "dynamic_reorder changed the round count at {what}"
        );
    }
    assert_eq!(report.render_table2(&chip), sifted.render_table2(&chip));
}

// ---------------------------------------------------------------------
// Kill → resume through the public facade.
// ---------------------------------------------------------------------

/// A 6-bit counter whose bad state is count == 44: a depth-44
/// falsification no small round budget can reach, shared by the
/// kill → resume tests.
fn counter6_bad_at_44() -> Aig {
    let mut g = Aig::new();
    let qs: Vec<_> = (0..6).map(|i| g.latch(format!("c{i}"), false)).collect();
    let mut carry = veridic::aig::Lit::TRUE;
    for (id, q) in &qs {
        let next = g.xor(*q, carry);
        carry = g.and(*q, carry);
        g.set_next(*id, next);
    }
    let hit: Vec<_> = (0..6).map(|i| if 44 >> i & 1 == 1 { qs[i].1 } else { !qs[i].1 }).collect();
    let bad = g.and_many(hit);
    g.add_bad("count_is_44", bad);
    g
}

/// A BDD reachability run killed mid-fixpoint resumes — through the
/// prelude-exported API — to the identical verdict, falsification
/// depth and completed-round count.
#[test]
fn killed_reachability_resumes_identically_via_facade() {
    let g = counter6_bad_at_44();
    let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
    let portfolio = Portfolio::default();
    let uninterrupted = portfolio.check(&g, &opts);

    let checkpoint = portfolio
        .run_with_budget(&g, &opts, &mut Budget::rounds(15))
        .into_checkpoint()
        .expect("15 rounds cannot reach depth 44");
    let resumed = match portfolio.resume(&g, &opts, checkpoint) {
        PortfolioOutcome::Done(r) => r,
        PortfolioOutcome::Suspended(_) => panic!("unbudgeted resume concludes"),
    };
    assert_eq!(resumed.verdict, uninterrupted.verdict);
    match (&resumed.verdict, &uninterrupted.verdict) {
        (Verdict::Falsified(a), Verdict::Falsified(b)) => assert_eq!(a.len(), b.len()),
        other => panic!("expected falsifications, got {other:?}"),
    }
    assert_eq!(resumed.stats.iterations, uninterrupted.stats.iterations);
}

/// The same kill → resume contract with the lane-parallel image
/// engine: suspending broadcasts the frontier through the checkpoint's
/// delta encoding, and the resumed run re-enters the parallel fan-out
/// mid-fixpoint with an identical verdict and round count.
#[test]
fn killed_parallel_reachability_resumes_identically_via_facade() {
    let g = counter6_bad_at_44();
    let opts = CheckOptions::builder()
        .bdd_only(true)
        .pobdd_window_vars(0)
        .image_workers(2)
        .build();
    let portfolio = Portfolio::default();
    let uninterrupted = portfolio.check(&g, &opts);

    let checkpoint = portfolio
        .run_with_budget(&g, &opts, &mut Budget::rounds(15))
        .into_checkpoint()
        .expect("15 rounds cannot reach depth 44");
    let resumed = match portfolio.resume(&g, &opts, checkpoint) {
        PortfolioOutcome::Done(r) => r,
        PortfolioOutcome::Suspended(_) => panic!("unbudgeted resume concludes"),
    };
    assert_eq!(resumed.verdict, uninterrupted.verdict);
    match (&resumed.verdict, &uninterrupted.verdict) {
        (Verdict::Falsified(a), Verdict::Falsified(b)) => assert_eq!(a.len(), b.len()),
        other => panic!("expected falsifications, got {other:?}"),
    }
    assert_eq!(resumed.stats.iterations, uninterrupted.stats.iterations);
}

/// What the checkpoint actually ships: a suspended monolithic run's
/// frontier is a [`veridic::bdd::DeltaBdd`] paired with the same
/// window's reached export, and a session resumed from it — serially
/// or through the parallel lanes — rebuilds the frontier via the delta
/// path and concludes with the full run's verdict.
#[test]
fn monolithic_checkpoint_frontier_is_delta_encoded() {
    let g = counter6_bad_at_44();
    let mut stats = CheckStats::default();
    let outcome = veridic::mc::bdd_umc_session(
        &g,
        1 << 20,
        10_000,
        1,
        false,
        false,
        &mut stats,
        &mut Budget::rounds(15),
        None,
    );
    let ck = match outcome {
        BddEngineOutcome::Suspended(ck) => ck,
        other => panic!("expected a suspension, got {other:?}"),
    };
    assert_eq!(ck.depth, 15);
    assert_eq!(ck.window_vars, 0);
    assert_eq!((ck.reached.len(), ck.frontier.len()), (1, 1));
    assert_eq!(
        ck.frontier[0].baseline_len(),
        ck.reached[0].node_count() - 1,
        "the frontier delta must be encoded against this window's reached export"
    );
    // Resume through the delta path, both serially and into the
    // parallel lane fan-out.
    for workers in [1usize, 2] {
        let mut s = CheckStats::default();
        let resumed = veridic::mc::bdd_umc_session(
            &g,
            1 << 20,
            10_000,
            workers,
            false,
            false,
            &mut s,
            &mut Budget::unlimited(),
            Some(&ck),
        );
        assert!(
            matches!(resumed, BddEngineOutcome::FalsifiedAtDepth(44)),
            "resume at workers={workers} must conclude at depth 44, got {resumed:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Parallel image determinism through the facade.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lane-parallel image contract end-to-end on the real workload
    /// shape: for a random chipgen leaf property, the monolithic BDD
    /// engine must report the same verdict (hence falsification depth)
    /// and completed-round count for every `image_workers` value —
    /// including auto — and every deterministic BDD statistic must
    /// agree between the explicit parallel counts.
    #[test]
    fn parallel_image_matches_serial(
        module_idx in 0usize..32,
        bug_coin in 0u32..2,
        vunit_idx in 0usize..4,
    ) {
        let with_bugs = bug_coin == 1;
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs });
        let modules = chip.modules();
        let mi = &modules[module_idx % modules.len()];
        let module = chip.design().module(mi.name()).unwrap();
        let vm = make_verifiable(module).unwrap();
        let vunits = generate_all(&vm).unwrap();
        let (_, compiled) = &vunits[vunit_idx % vunits.len()];
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        let with_workers = |w: usize| {
            CheckOptions::builder()
                .bdd_only(true)
                .pobdd_window_vars(0)
                // Tight enough that the hardest properties resource out
                // instead of dominating the suite — quota deaths must
                // be worker-count-deterministic too.
                .bdd_nodes(1 << 16)
                .image_workers(w)
                .build()
        };
        let what = format!("{}:{} with_bugs={}", mi.name(), vunit_idx, with_bugs);
        let serial = Portfolio::default().check(&aig, &with_workers(1));
        let mut parallel_stats = Vec::new();
        // `0` resolves to the CPU count, so on a single-core host it is
        // the serial path: it joins the verdict/round contract but not
        // the lane-accounting comparison below.
        for workers in [2usize, 3, 0] {
            let got = Portfolio::default().check(&aig, &with_workers(workers));
            prop_assert_eq!(
                &serial.verdict, &got.verdict,
                "verdict diverged at workers={} on {}", workers, &what
            );
            prop_assert_eq!(
                serial.stats.iterations, got.stats.iterations,
                "round count diverged at workers={} on {}", workers, &what
            );
            if workers != 0 {
                parallel_stats.push(got.stats);
            }
        }
        let (two, three) = (&parallel_stats[0], &parallel_stats[1]);
        prop_assert_eq!(
            two.bdd_nodes, three.bdd_nodes,
            "peak live nodes diverged between parallel counts on {}", &what
        );
        prop_assert_eq!(
            two.bdd_allocated, three.bdd_allocated,
            "allocations diverged between parallel counts on {}", &what
        );
        prop_assert_eq!(
            &two.worker_bdd, &three.worker_bdd,
            "per-lane stats diverged between parallel counts on {}", &what
        );
    }
}
