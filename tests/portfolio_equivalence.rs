//! The API-redesign safety net: `Portfolio::default()` must be
//! verdict-, stats- and render-identical to the pre-redesign engine
//! cascade (preserved verbatim as `veridic::mc::legacy`), and the
//! checkpoint path must resume killed runs to identical results.
//!
//! Three layers:
//! * a proptest over random small sequential designs,
//! * a proptest over random chipgen leaf-module properties (the real
//!   workload shape: stereotype vunits, assumes, multi-bad AIGs),
//! * the full small-chip campaign, record by record, Table-2 rendering
//!   included.

use proptest::prelude::*;
use veridic::mc::{legacy, BddEngineOutcome};
use veridic::prelude::*;

/// Deep equality between the portfolio and the legacy cascade on one
/// AIG: verdict, every deterministic statistic, and the rendered
/// engine-log strings.
fn assert_equivalent(aig: &Aig, opts: &CheckOptions, what: &str) {
    let new = Portfolio::default().check(aig, opts);
    let old = legacy::check(aig, opts);
    assert_eq!(new.verdict, old.verdict, "verdict diverged on {what}");
    assert_eq!(
        new.stats.engines_tried(),
        old.engines_tried,
        "engine-log rendering diverged on {what}"
    );
    assert_eq!(new.stats.per_bad_coi, old.stats.per_bad_coi, "per-bad COI diverged on {what}");
    assert_eq!(new.stats.coi_latches, old.stats.coi_latches, "{what}");
    assert_eq!(new.stats.coi_ands, old.stats.coi_ands, "{what}");
    assert_eq!(new.stats.bdd_nodes, old.stats.bdd_nodes, "peak nodes diverged on {what}");
    assert_eq!(new.stats.bdd_allocated, old.stats.bdd_allocated, "allocations diverged on {what}");
    assert_eq!(new.stats.bdd_quota_hits, old.stats.bdd_quota_hits, "{what}");
    assert_eq!(new.stats.sat_conflicts, old.stats.sat_conflicts, "conflicts diverged on {what}");
    assert_eq!(new.stats.iterations, old.stats.iterations, "iterations diverged on {what}");
    assert_eq!(new.stats.worker_bdd, old.stats.worker_bdd, "worker stats diverged on {what}");
}

// ---------------------------------------------------------------------
// Random small sequential designs.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Design {
    Counter { bits: u32, bad_at: u64 },
    ShiftXor { bits: u32, taps: u64, bad_mask: u64 },
    Stuck { bits: u32 },
}

fn build(design: &Design) -> Aig {
    let mut g = Aig::new();
    let counter = |g: &mut Aig, bits: u32| -> Vec<veridic::aig::Lit> {
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = veridic::aig::Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        qs.into_iter().map(|(_, q)| q).collect()
    };
    let state_match = |g: &mut Aig, qs: &[veridic::aig::Lit], mask: u64| {
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| if mask >> i & 1 == 1 { *q } else { !*q })
            .collect();
        g.and_many(hit)
    };
    match design {
        Design::Counter { bits, bad_at } => {
            let qs = counter(&mut g, *bits);
            let bad = state_match(&mut g, &qs, bad_at & ((1 << bits) - 1));
            g.add_bad("count_hit", bad);
        }
        Design::ShiftXor { bits, taps, bad_mask } => {
            let bits = *bits as usize;
            let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("s{i}"), i == 0)).collect();
            let mut fb = qs[bits - 1].1;
            for (i, (_, q)) in qs.iter().enumerate().take(bits - 1) {
                if taps >> i & 1 == 1 {
                    fb = g.xor(fb, *q);
                }
            }
            for i in (1..bits).rev() {
                g.set_next(qs[i].0, qs[i - 1].1);
            }
            g.set_next(qs[0].0, fb);
            let lits: Vec<_> = qs.iter().map(|(_, q)| *q).collect();
            let bad = state_match(&mut g, &lits, bad_mask & ((1 << bits) - 1));
            g.add_bad("state_hit", bad);
        }
        Design::Stuck { bits } => {
            let qs = counter(&mut g, *bits);
            let (l, s) = g.latch("stuck", false);
            g.set_next(l, s);
            // Entangle with the counter so the COI keeps it.
            let full = state_match(&mut g, &qs, (1 << bits) - 1);
            let bad = g.and(s, full);
            g.add_bad("never", bad);
        }
    }
    g
}

fn design_strategy() -> impl Strategy<Value = Design> {
    prop_oneof![
        (2u32..5, 0u64..32).prop_map(|(bits, bad_at)| Design::Counter { bits, bad_at }),
        (3u32..6, 0u64..32, 0u64..64)
            .prop_map(|(bits, taps, bad_mask)| Design::ShiftXor { bits, taps, bad_mask }),
        (2u32..5, 0u64..1).prop_map(|(bits, _)| Design::Stuck { bits }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole equality contract on random designs, across the
    /// option axes the default policy gates on.
    #[test]
    fn portfolio_matches_legacy_on_random_designs(
        design in design_strategy(),
        mode in 0u32..3,
    ) {
        let aig = build(&design);
        let opts = match mode {
            0 => CheckOptions::default(),
            1 => CheckOptions::builder().bdd_only(true).build(),
            _ => CheckOptions::builder().sat_only(true).build(),
        };
        assert_equivalent(&aig, &opts, &format!("{design:?} mode={mode}"));
    }

    /// The same contract on the real workload shape: a random chipgen
    /// leaf module (from the clean or the bug-seeded chip), one of its
    /// stereotype vunits, every assert of that vunit.
    #[test]
    fn portfolio_matches_legacy_on_chipgen_properties(
        module_idx in 0usize..32,
        bug_coin in 0u32..2,
        vunit_idx in 0usize..4,
    ) {
        let with_bugs = bug_coin == 1;
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs });
        let modules = chip.modules();
        let mi = &modules[module_idx % modules.len()];
        let module = chip.design().module(mi.name()).unwrap();
        let vm = make_verifiable(module).unwrap();
        let vunits = generate_all(&vm).unwrap();
        let (_, compiled) = &vunits[vunit_idx % vunits.len()];
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        assert_equivalent(&aig, &CheckOptions::default(), &format!(
            "{}:{} with_bugs={with_bugs}", mi.name(), vunit_idx
        ));
    }
}

// ---------------------------------------------------------------------
// The full campaign.
// ---------------------------------------------------------------------

/// The acceptance criterion: the portfolio-driven campaign over the
/// full (buggy) small chip is record-for-record identical to the legacy
/// cascade — verdicts, stats, engine-log rendering, and the rendered
/// Table 2.
#[test]
fn full_campaign_is_identical_to_legacy_cascade() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let opts = CheckOptions::default();
    let report = run_campaign(&chip, &CampaignConfig { check: opts.clone(), workers: 0 });

    // Replay the campaign's exact check sequence through the legacy
    // cascade and compare record by record.
    let mut legacy_records = Vec::new();
    for mi in chip.modules() {
        let m = chip.design().module(mi.name()).unwrap();
        let vm = make_verifiable(m).unwrap();
        for (_g, compiled) in generate_all(&vm).unwrap() {
            let lowered = compiled.module.to_aig().unwrap();
            let mut aig = lowered.aig.clone();
            for (label, net) in &compiled.asserts {
                aig.add_bad(label.clone(), lowered.bit(*net, 0));
            }
            for (label, net) in &compiled.assumes {
                aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
            }
            for (idx, (label, _)) in compiled.asserts.iter().enumerate() {
                let mut stats = CheckStats::default();
                let mut engines = Vec::new();
                let verdict = legacy::check_one(&aig, idx, &opts, &mut stats, &mut engines);
                legacy_records.push((mi.name().to_string(), label.clone(), verdict, stats, engines));
            }
        }
    }

    assert_eq!(report.records.len(), legacy_records.len());
    for (rec, (module, label, verdict, stats, engines)) in
        report.records.iter().zip(&legacy_records)
    {
        let what = format!("{module}/{label}");
        assert_eq!(&rec.module, module, "record order diverged at {what}");
        assert_eq!(&rec.label, label, "record order diverged at {what}");
        assert_eq!(&rec.verdict, verdict, "verdict diverged at {what}");
        assert_eq!(&rec.stats.engines_tried(), engines, "engine log diverged at {what}");
        assert_eq!(rec.stats.per_bad_coi, stats.per_bad_coi, "{what}");
        assert_eq!(rec.stats.bdd_nodes, stats.bdd_nodes, "{what}");
        assert_eq!(rec.stats.bdd_allocated, stats.bdd_allocated, "{what}");
        assert_eq!(rec.stats.sat_conflicts, stats.sat_conflicts, "{what}");
        assert_eq!(rec.stats.iterations, stats.iterations, "{what}");
        assert_eq!(rec.stats.worker_bdd, stats.worker_bdd, "{what}");
    }

    // Table-2 rendering: swap the legacy verdicts into a clone of the
    // report and require byte-identical text.
    let mut legacy_report = report.clone();
    for (rec, (_, _, verdict, stats, _)) in
        legacy_report.records.iter_mut().zip(legacy_records)
    {
        rec.verdict = verdict;
        rec.stats = stats;
    }
    assert_eq!(report.render_table2(&chip), legacy_report.render_table2(&chip));
}

// ---------------------------------------------------------------------
// Kill → resume through the public facade.
// ---------------------------------------------------------------------

/// A 6-bit counter whose bad state is count == 44: a depth-44
/// falsification no small round budget can reach, shared by the
/// kill → resume tests.
fn counter6_bad_at_44() -> Aig {
    let mut g = Aig::new();
    let qs: Vec<_> = (0..6).map(|i| g.latch(format!("c{i}"), false)).collect();
    let mut carry = veridic::aig::Lit::TRUE;
    for (id, q) in &qs {
        let next = g.xor(*q, carry);
        carry = g.and(*q, carry);
        g.set_next(*id, next);
    }
    let hit: Vec<_> = (0..6).map(|i| if 44 >> i & 1 == 1 { qs[i].1 } else { !qs[i].1 }).collect();
    let bad = g.and_many(hit);
    g.add_bad("count_is_44", bad);
    g
}

/// A BDD reachability run killed mid-fixpoint resumes — through the
/// prelude-exported API — to the identical verdict, falsification
/// depth and completed-round count.
#[test]
fn killed_reachability_resumes_identically_via_facade() {
    let g = counter6_bad_at_44();
    let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
    let portfolio = Portfolio::default();
    let uninterrupted = portfolio.check(&g, &opts);

    let checkpoint = portfolio
        .run_with_budget(&g, &opts, &mut Budget::rounds(15))
        .into_checkpoint()
        .expect("15 rounds cannot reach depth 44");
    let resumed = match portfolio.resume(&g, &opts, checkpoint) {
        PortfolioOutcome::Done(r) => r,
        PortfolioOutcome::Suspended(_) => panic!("unbudgeted resume concludes"),
    };
    assert_eq!(resumed.verdict, uninterrupted.verdict);
    match (&resumed.verdict, &uninterrupted.verdict) {
        (Verdict::Falsified(a), Verdict::Falsified(b)) => assert_eq!(a.len(), b.len()),
        other => panic!("expected falsifications, got {other:?}"),
    }
    assert_eq!(resumed.stats.iterations, uninterrupted.stats.iterations);
}

/// The same kill → resume contract with the lane-parallel image
/// engine: suspending broadcasts the frontier through the checkpoint's
/// delta encoding, and the resumed run re-enters the parallel fan-out
/// mid-fixpoint with an identical verdict and round count.
#[test]
fn killed_parallel_reachability_resumes_identically_via_facade() {
    let g = counter6_bad_at_44();
    let opts = CheckOptions::builder()
        .bdd_only(true)
        .pobdd_window_vars(0)
        .image_workers(2)
        .build();
    let portfolio = Portfolio::default();
    let uninterrupted = portfolio.check(&g, &opts);

    let checkpoint = portfolio
        .run_with_budget(&g, &opts, &mut Budget::rounds(15))
        .into_checkpoint()
        .expect("15 rounds cannot reach depth 44");
    let resumed = match portfolio.resume(&g, &opts, checkpoint) {
        PortfolioOutcome::Done(r) => r,
        PortfolioOutcome::Suspended(_) => panic!("unbudgeted resume concludes"),
    };
    assert_eq!(resumed.verdict, uninterrupted.verdict);
    match (&resumed.verdict, &uninterrupted.verdict) {
        (Verdict::Falsified(a), Verdict::Falsified(b)) => assert_eq!(a.len(), b.len()),
        other => panic!("expected falsifications, got {other:?}"),
    }
    assert_eq!(resumed.stats.iterations, uninterrupted.stats.iterations);
}

/// What the checkpoint actually ships: a suspended monolithic run's
/// frontier is a [`veridic::bdd::DeltaBdd`] paired with the same
/// window's reached export, and a session resumed from it — serially
/// or through the parallel lanes — rebuilds the frontier via the delta
/// path and concludes with the full run's verdict.
#[test]
fn monolithic_checkpoint_frontier_is_delta_encoded() {
    let g = counter6_bad_at_44();
    let mut stats = CheckStats::default();
    let outcome = veridic::mc::bdd_umc_session(
        &g,
        1 << 20,
        10_000,
        1,
        &mut stats,
        &mut Budget::rounds(15),
        None,
    );
    let ck = match outcome {
        BddEngineOutcome::Suspended(ck) => ck,
        other => panic!("expected a suspension, got {other:?}"),
    };
    assert_eq!(ck.depth, 15);
    assert_eq!(ck.window_vars, 0);
    assert_eq!((ck.reached.len(), ck.frontier.len()), (1, 1));
    assert_eq!(
        ck.frontier[0].baseline_len(),
        ck.reached[0].node_count() - 1,
        "the frontier delta must be encoded against this window's reached export"
    );
    // Resume through the delta path, both serially and into the
    // parallel lane fan-out.
    for workers in [1usize, 2] {
        let mut s = CheckStats::default();
        let resumed = veridic::mc::bdd_umc_session(
            &g,
            1 << 20,
            10_000,
            workers,
            &mut s,
            &mut Budget::unlimited(),
            Some(&ck),
        );
        assert!(
            matches!(resumed, BddEngineOutcome::FalsifiedAtDepth(44)),
            "resume at workers={workers} must conclude at depth 44, got {resumed:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Parallel image determinism through the facade.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lane-parallel image contract end-to-end on the real workload
    /// shape: for a random chipgen leaf property, the monolithic BDD
    /// engine must report the same verdict (hence falsification depth)
    /// and completed-round count for every `image_workers` value —
    /// including auto — and every deterministic BDD statistic must
    /// agree between the explicit parallel counts.
    #[test]
    fn parallel_image_matches_serial(
        module_idx in 0usize..32,
        bug_coin in 0u32..2,
        vunit_idx in 0usize..4,
    ) {
        let with_bugs = bug_coin == 1;
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs });
        let modules = chip.modules();
        let mi = &modules[module_idx % modules.len()];
        let module = chip.design().module(mi.name()).unwrap();
        let vm = make_verifiable(module).unwrap();
        let vunits = generate_all(&vm).unwrap();
        let (_, compiled) = &vunits[vunit_idx % vunits.len()];
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        let with_workers = |w: usize| {
            CheckOptions::builder()
                .bdd_only(true)
                .pobdd_window_vars(0)
                // Tight enough that the hardest properties resource out
                // instead of dominating the suite — quota deaths must
                // be worker-count-deterministic too.
                .bdd_nodes(1 << 16)
                .image_workers(w)
                .build()
        };
        let what = format!("{}:{} with_bugs={}", mi.name(), vunit_idx, with_bugs);
        let serial = Portfolio::default().check(&aig, &with_workers(1));
        let mut parallel_stats = Vec::new();
        // `0` resolves to the CPU count, so on a single-core host it is
        // the serial path: it joins the verdict/round contract but not
        // the lane-accounting comparison below.
        for workers in [2usize, 3, 0] {
            let got = Portfolio::default().check(&aig, &with_workers(workers));
            prop_assert_eq!(
                &serial.verdict, &got.verdict,
                "verdict diverged at workers={} on {}", workers, &what
            );
            prop_assert_eq!(
                serial.stats.iterations, got.stats.iterations,
                "round count diverged at workers={} on {}", workers, &what
            );
            if workers != 0 {
                parallel_stats.push(got.stats);
            }
        }
        let (two, three) = (&parallel_stats[0], &parallel_stats[1]);
        prop_assert_eq!(
            two.bdd_nodes, three.bdd_nodes,
            "peak live nodes diverged between parallel counts on {}", &what
        );
        prop_assert_eq!(
            two.bdd_allocated, three.bdd_allocated,
            "allocations diverged between parallel counts on {}", &what
        );
        prop_assert_eq!(
            &two.worker_bdd, &three.worker_bdd,
            "per-lane stats diverged between parallel counts on {}", &what
        );
    }
}
