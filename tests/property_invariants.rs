//! Property-based tests (proptest) on the core data structures and
//! cross-layer invariants.

use proptest::prelude::*;
use veridic::bdd::BddManager;
use veridic::prelude::*;
use veridic::sat::{Lit as SLit, SolveResult, Solver};

/// A random boolean expression over `n` variables, as a tree.
#[derive(Clone, Debug)]
enum BoolTree {
    Var(u32),
    Not(Box<BoolTree>),
    And(Box<BoolTree>, Box<BoolTree>),
    Or(Box<BoolTree>, Box<BoolTree>),
    Xor(Box<BoolTree>, Box<BoolTree>),
}

fn bool_tree(nvars: u32) -> impl Strategy<Value = BoolTree> {
    let leaf = (0..nvars).prop_map(BoolTree::Var);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| BoolTree::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolTree::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolTree::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| BoolTree::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_tree(t: &BoolTree, assignment: u32) -> bool {
    match t {
        BoolTree::Var(v) => assignment >> v & 1 == 1,
        BoolTree::Not(a) => !eval_tree(a, assignment),
        BoolTree::And(a, b) => eval_tree(a, assignment) && eval_tree(b, assignment),
        BoolTree::Or(a, b) => eval_tree(a, assignment) || eval_tree(b, assignment),
        BoolTree::Xor(a, b) => eval_tree(a, assignment) ^ eval_tree(b, assignment),
    }
}

fn tree_to_bdd(m: &mut BddManager, t: &BoolTree) -> veridic::bdd::NodeId {
    match t {
        BoolTree::Var(v) => m.var(*v).unwrap(),
        BoolTree::Not(a) => {
            let a = tree_to_bdd(m, a);
            m.not(a)
        }
        BoolTree::And(a, b) => {
            let a = tree_to_bdd(m, a);
            let b = tree_to_bdd(m, b);
            m.and(a, b).unwrap()
        }
        BoolTree::Or(a, b) => {
            let a = tree_to_bdd(m, a);
            let b = tree_to_bdd(m, b);
            m.or(a, b).unwrap()
        }
        BoolTree::Xor(a, b) => {
            let a = tree_to_bdd(m, a);
            let b = tree_to_bdd(m, b);
            m.xor(a, b).unwrap()
        }
    }
}

fn tree_to_aig(g: &mut Aig, inputs: &[veridic::aig::Lit], t: &BoolTree) -> veridic::aig::Lit {
    match t {
        BoolTree::Var(v) => inputs[*v as usize],
        BoolTree::Not(a) => !tree_to_aig(g, inputs, a),
        BoolTree::And(a, b) => {
            let a = tree_to_aig(g, inputs, a);
            let b = tree_to_aig(g, inputs, b);
            g.and(a, b)
        }
        BoolTree::Or(a, b) => {
            let a = tree_to_aig(g, inputs, a);
            let b = tree_to_aig(g, inputs, b);
            g.or(a, b)
        }
        BoolTree::Xor(a, b) => {
            let a = tree_to_aig(g, inputs, a);
            let b = tree_to_aig(g, inputs, b);
            g.xor(a, b)
        }
    }
}

const NVARS: u32 = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BDD of a random expression equals its truth table.
    #[test]
    fn bdd_matches_truth_table(t in bool_tree(NVARS)) {
        let mut m = BddManager::new(1 << 18);
        let f = tree_to_bdd(&mut m, &t);
        for asg in 0..(1u32 << NVARS) {
            let want = eval_tree(&t, asg);
            let got = m.eval(f, &|v| asg >> v & 1 == 1);
            prop_assert_eq!(got, want, "assignment {:05b}", asg);
        }
    }

    /// The normalized, cache-shared, iterative ITE agrees with the
    /// textbook recursive reference on random operand triples: same
    /// canonical node, and the node's truth table is ite(f, g, h).
    #[test]
    fn ite_normalization_matches_reference(
        tf in bool_tree(NVARS),
        tg in bool_tree(NVARS),
        th in bool_tree(NVARS),
    ) {
        let mut m = BddManager::new(1 << 18);
        let f = tree_to_bdd(&mut m, &tf);
        let g = tree_to_bdd(&mut m, &tg);
        let h = tree_to_bdd(&mut m, &th);
        let fast = m.ite(f, g, h).unwrap();
        let reference = m.ite_reference(f, g, h).unwrap();
        prop_assert_eq!(fast, reference, "fast ITE must build the same canonical node");
        for asg in 0..(1u32 << NVARS) {
            let want = if eval_tree(&tf, asg) { eval_tree(&tg, asg) } else { eval_tree(&th, asg) };
            prop_assert_eq!(m.eval(fast, &|v| asg >> v & 1 == 1), want, "assignment {:05b}", asg);
        }
    }

    /// Complement-edge `not`/`and`/`or`/`xor` agree with the
    /// non-complemented oracle `ite_reference` — same canonical node —
    /// and with the expression truth tables.
    #[test]
    fn complemented_ops_match_reference(
        tf in bool_tree(NVARS),
        tg in bool_tree(NVARS),
    ) {
        use veridic::bdd::NodeId;
        let mut m = BddManager::new(1 << 18);
        let f = tree_to_bdd(&mut m, &tf);
        let g = tree_to_bdd(&mut m, &tg);
        // not: a tag flip must equal the reference ite(f, FALSE, TRUE).
        let nf = m.not(f);
        let nf_ref = m.ite_reference(f, NodeId::FALSE, NodeId::TRUE).unwrap();
        prop_assert_eq!(nf, nf_ref, "¬f must be the canonical complement");
        // and / or / xor against their reference ITE phrasings.
        let and = m.and(f, g).unwrap();
        let and_ref = m.ite_reference(f, g, NodeId::FALSE).unwrap();
        prop_assert_eq!(and, and_ref);
        let or = m.or(f, g).unwrap();
        let or_ref = m.ite_reference(f, NodeId::TRUE, g).unwrap();
        prop_assert_eq!(or, or_ref);
        let ng = m.not(g);
        let xor = m.xor(f, g).unwrap();
        let xor_ref = m.ite_reference(f, ng, g).unwrap();
        prop_assert_eq!(xor, xor_ref);
        for asg in 0..(1u32 << NVARS) {
            let fv = eval_tree(&tf, asg);
            let gv = eval_tree(&tg, asg);
            let assign = |v: u32| asg >> v & 1 == 1;
            prop_assert_eq!(m.eval(nf, &assign), !fv, "not, assignment {:05b}", asg);
            prop_assert_eq!(m.eval(and, &assign), fv && gv, "and, assignment {:05b}", asg);
            prop_assert_eq!(m.eval(or, &assign), fv || gv, "or, assignment {:05b}", asg);
            prop_assert_eq!(m.eval(xor, &assign), fv ^ gv, "xor, assignment {:05b}", asg);
        }
    }

    /// Mark-and-sweep preserves every rooted function: after building
    /// extra garbage and collecting, all protected roots still evaluate
    /// to their truth tables.
    #[test]
    fn gc_preserves_rooted_functions(
        t0 in bool_tree(NVARS),
        t1 in bool_tree(NVARS),
        t2 in bool_tree(NVARS),
        junk in bool_tree(NVARS),
    ) {
        let trees = [t0, t1, t2];
        let mut m = BddManager::new(1 << 18);
        let roots: Vec<_> = trees
            .iter()
            .map(|t| {
                let f = tree_to_bdd(&mut m, t);
                m.protect(f);
                f
            })
            .collect();
        // Unrooted garbage, then an explicit sweep.
        let _ = tree_to_bdd(&mut m, &junk);
        let live_before = m.num_nodes();
        let freed = m.gc();
        prop_assert_eq!(m.num_nodes(), live_before - freed);
        for (t, f) in trees.iter().zip(&roots) {
            for asg in 0..(1u32 << NVARS) {
                let want = eval_tree(t, asg);
                prop_assert_eq!(
                    m.eval(*f, &|v| asg >> v & 1 == 1),
                    want,
                    "root must survive GC, assignment {:05b}", asg
                );
            }
        }
        // The roots stay usable for further operations after the sweep.
        let conj = m.and(roots[0], roots[1]).unwrap();
        for asg in 0..(1u32 << NVARS) {
            let want = eval_tree(&trees[0], asg) && eval_tree(&trees[1], asg);
            prop_assert_eq!(m.eval(conj, &|v| asg >> v & 1 == 1), want);
        }
        // Continue with the heuristic collectors armed as aggressively
        // as they go — collect on any growth, evict cache entries the
        // moment they age — which changes *when* sweeps happen (at
        // every operation entry now), never what survives them. Under
        // this regime every value held across an operation must be
        // rooted (the engines' discipline; an unrooted intermediate is
        // fair game at the very next op), so the churn here is a chain
        // of individually-protected operations over the rooted roots.
        m.set_gc_growth_threshold(Some(1));
        m.set_cache_max_age(Some(0));
        let conj2 = m.and(roots[1], roots[2]).unwrap();
        m.protect(conj2);
        let mix = m.xor(conj2, roots[0]).unwrap();
        m.protect(mix);
        for asg in 0..(1u32 << NVARS) {
            let e: Vec<bool> = trees.iter().map(|t| eval_tree(t, asg)).collect();
            let assign = |v: u32| asg >> v & 1 == 1;
            prop_assert_eq!(
                m.eval(conj2, &assign),
                e[1] && e[2],
                "ops must stay correct under heuristic GC, assignment {:05b}", asg
            );
            prop_assert_eq!(
                m.eval(mix, &assign),
                (e[1] && e[2]) ^ e[0],
                "assignment {:05b}", asg
            );
        }
        for (t, f) in trees.iter().zip(&roots) {
            for asg in 0..(1u32 << NVARS) {
                prop_assert_eq!(
                    m.eval(*f, &|v| asg >> v & 1 == 1),
                    eval_tree(t, asg),
                    "root must survive heuristic GC, assignment {:05b}", asg
                );
            }
        }
    }

    /// In-place dynamic reordering — random adjacent-level swaps
    /// followed by a full Rudell sift — preserves the function denoted
    /// by every rooted external `NodeId`: the ids themselves stay
    /// valid (no re-import, no translation table), their truth tables
    /// are unchanged, they survive a post-reorder GC, and operations
    /// keep working at the new order.
    #[test]
    fn reorder_preserves_rooted_functions(
        t0 in bool_tree(NVARS),
        t1 in bool_tree(NVARS),
        junk in bool_tree(NVARS),
        swaps in proptest::collection::vec(0u32..NVARS - 1, 0..8),
    ) {
        let trees = [t0, t1];
        let mut m = BddManager::new(1 << 18);
        // Ensure every variable exists so swap levels 0..NVARS-1 are
        // always in range, even when a random tree omits a variable.
        for v in 0..NVARS {
            m.var(v).unwrap();
        }
        let roots: Vec<_> = trees
            .iter()
            .map(|t| {
                let f = tree_to_bdd(&mut m, t);
                m.protect(f);
                f
            })
            .collect();
        // Unrooted garbage: reordering must neither resurrect it nor
        // let the following sweep take a root with it.
        let _ = tree_to_bdd(&mut m, &junk);
        for &lvl in &swaps {
            m.swap_adjacent_levels(lvl);
            // The var<->level maps stay inverse permutations.
            let order = m.current_order();
            for (level, var) in order.iter().enumerate() {
                prop_assert_eq!(m.level_of(*var) as usize, level);
                prop_assert_eq!(m.var_at_level(level as u32), *var);
            }
        }
        let (before, after) = m.sift();
        prop_assert!(after <= before, "sifting must never grow the graph ({before} -> {after})");
        for (t, f) in trees.iter().zip(&roots) {
            for asg in 0..(1u32 << NVARS) {
                prop_assert_eq!(
                    m.eval(*f, &|v| asg >> v & 1 == 1),
                    eval_tree(t, asg),
                    "rooted id must denote the same function after reorder, assignment {:05b}", asg
                );
            }
        }
        // Reorder-then-GC: the swap rewiring must leave refcounts and
        // reachability consistent enough for a full mark-and-sweep.
        m.gc();
        for (t, f) in trees.iter().zip(&roots) {
            for asg in 0..(1u32 << NVARS) {
                prop_assert_eq!(
                    m.eval(*f, &|v| asg >> v & 1 == 1),
                    eval_tree(t, asg),
                    "rooted id must survive reorder-then-GC, assignment {:05b}", asg
                );
            }
        }
        // And the manager keeps functioning at the new order.
        let conj = m.and(roots[0], roots[1]).unwrap();
        for asg in 0..(1u32 << NVARS) {
            let want = eval_tree(&trees[0], asg) && eval_tree(&trees[1], asg);
            prop_assert_eq!(m.eval(conj, &|v| asg >> v & 1 == 1), want);
        }
    }

    /// Transfer round-trips between managers whose dynamic orders have
    /// diverged: a reordered source exports in its own level order, an
    /// identity-order receiver rebuilds via the ITE fallback, a
    /// receiver that adopted the source's order rebuilds node-exactly,
    /// and a further hop into a third order still denotes the same
    /// function.
    #[test]
    fn transfer_roundtrip_across_diverged_orders(
        tf in bool_tree(NVARS),
        swaps in proptest::collection::vec(0u32..NVARS - 1, 1..8),
    ) {
        use veridic::bdd::transfer::{export, import};
        let mut src = BddManager::new(1 << 18);
        for v in 0..NVARS {
            src.var(v).unwrap();
        }
        let f = tree_to_bdd(&mut src, &tf);
        src.protect(f);
        for &lvl in &swaps {
            src.swap_adjacent_levels(lvl);
        }
        let exported = export(&src, f);
        prop_assert!(exported.source_order().len() >= NVARS as usize);

        // Identity-order receiver: level checks fail wherever the
        // orders disagree, so the ITE fallback must reconstruct.
        let mut dst = BddManager::new(1 << 18);
        let got = import(&exported, &mut dst).unwrap();
        for asg in 0..(1u32 << NVARS) {
            prop_assert_eq!(
                dst.eval(got, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1),
                "identity receiver, assignment {:05b}", asg
            );
        }

        // A receiver that adopted the source's order takes the fast
        // mk path throughout and rebuilds node-exactly.
        let mut twin = BddManager::new(1 << 18);
        twin.adopt_order(exported.source_order());
        let got_twin = import(&exported, &mut twin).unwrap();
        prop_assert_eq!(
            twin.size(got_twin),
            src.size(f),
            "order-adopting receiver must rebuild node-exactly"
        );
        for asg in 0..(1u32 << NVARS) {
            prop_assert_eq!(
                twin.eval(got_twin, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1),
                "order-adopting receiver, assignment {:05b}", asg
            );
        }

        // Second hop: re-export from the adopted-order twin into a
        // receiver with yet another order (the reversal).
        let back = export(&twin, got_twin);
        let reversed: Vec<u32> = (0..NVARS).rev().collect();
        let mut third = BddManager::new(1 << 18);
        third.adopt_order(&reversed);
        let got_third = import(&back, &mut third).unwrap();
        for asg in 0..(1u32 << NVARS) {
            prop_assert_eq!(
                third.eval(got_third, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1),
                "reversed-order receiver, assignment {:05b}", asg
            );
        }
    }

    /// Baseline + delta must reconstruct exactly what a full export
    /// reconstructs, for random function pairs: overlapping, identical
    /// (empty delta), disjoint and constant cones all arise.
    #[test]
    fn delta_export_matches_full_export(
        tb in bool_tree(NVARS),
        tf in bool_tree(NVARS),
    ) {
        use veridic::bdd::transfer::{export, export_delta, import, import_delta};
        use veridic::bdd::NodeId;
        let mut src = BddManager::new(1 << 18);
        let b = tree_to_bdd(&mut src, &tb);
        src.protect(b);
        let f = tree_to_bdd(&mut src, &tf);
        src.protect(f);
        let overlap = src.or(b, f).unwrap();
        src.protect(overlap);
        let baseline = export(&src, b);
        // Identical-cone edge first: a delta of the baseline function
        // against its own export ships zero nodes.
        let own = export_delta(&src, b, &baseline);
        prop_assert_eq!(own.delta_node_count(), 0, "identical cone must ship nothing");
        for target in [f, overlap, b, NodeId::TRUE, NodeId::FALSE] {
            let full = export(&src, target);
            let delta = export_delta(&src, target, &baseline);
            // Whatever sharing the delta found, it never ships more
            // than the full cone.
            prop_assert!(delta.delta_node_count() < full.node_count());
            // Both routes into one destination manager must hash-cons
            // to the same node (node-identical reconstruction), and the
            // pure-data rebase must compact to exactly the full cone.
            let mut dst = BddManager::new(1 << 18);
            let via_full = import(&full, &mut dst).unwrap();
            let via_delta = import_delta(&delta, &baseline, &mut dst).unwrap();
            prop_assert_eq!(via_delta, via_full, "delta route must rebuild the same node");
            let rebased = delta.rebase(&baseline);
            prop_assert_eq!(rebased.node_count(), full.node_count());
            let via_rebased = import(&rebased, &mut dst).unwrap();
            prop_assert_eq!(via_rebased, via_full);
            for asg in 0..(1u32 << NVARS) {
                prop_assert_eq!(
                    dst.eval(via_delta, &|v| asg >> v & 1 == 1),
                    src.eval(target, &|v| asg >> v & 1 == 1),
                    "assignment {:05b}", asg
                );
            }
            dst.unprotect(via_full);
            dst.unprotect(via_delta);
            dst.unprotect(via_rebased);
        }
    }

    /// The AIG of a random expression equals its truth table, and the
    /// SAT encoding agrees with both: the solver finds a model exactly
    /// when the truth table has a one.
    #[test]
    fn aig_and_sat_match_truth_table(t in bool_tree(NVARS)) {
        let mut g = Aig::new();
        let inputs: Vec<_> = (0..NVARS).map(|i| g.input(format!("x{i}"))).collect();
        let root = tree_to_aig(&mut g, &inputs, &t);
        let mut ones = 0u32;
        for asg in 0..(1u32 << NVARS) {
            let want = eval_tree(&t, asg);
            ones += want as u32;
            let got = g.eval_comb(root, &|v| {
                let idx = g.input_index(v).unwrap();
                asg >> idx & 1 == 1
            });
            prop_assert_eq!(got, want);
        }
        // SAT check.
        let mut s = Solver::new();
        let mut cb = veridic::sat::CnfBuilder::new(&mut s);
        let frame = cb.encode_frame(&g, None);
        let lit = frame.lit(root);
        let res = s.solve(&[lit]);
        if ones > 0 {
            prop_assert_eq!(res, SolveResult::Sat);
            // Verify the model against the tree.
            let mut asg = 0u32;
            for (i, l) in frame.inputs.iter().enumerate() {
                if s.value(l.var()).map(|v| v ^ l.is_neg()).unwrap_or(false) {
                    asg |= 1 << i;
                }
            }
            prop_assert!(eval_tree(&t, asg), "SAT model must satisfy the tree");
        } else {
            prop_assert_eq!(res, SolveResult::Unsat);
        }
        let _ = SLit::pos(veridic::sat::Var(0)); // keep the import honest
    }

    /// Value arithmetic is consistent with u64 arithmetic at width <= 32.
    #[test]
    fn value_arithmetic_matches_u64(a in 0u64..0xFFFF_FFFF, b in 0u64..0xFFFF_FFFF) {
        let w = 32;
        let va = Value::from_u64(w, a);
        let vb = Value::from_u64(w, b);
        let mask = 0xFFFF_FFFFu64;
        prop_assert_eq!(va.add(&vb).to_u64(), (a + b) & mask);
        prop_assert_eq!(va.sub(&vb).to_u64(), a.wrapping_sub(b) & mask);
        prop_assert_eq!(va.and(&vb).to_u64(), a & b);
        prop_assert_eq!(va.or(&vb).to_u64(), a | b);
        prop_assert_eq!(va.xor(&vb).to_u64(), a ^ b);
        prop_assert_eq!(va.ult(&vb), a < b);
        prop_assert_eq!(va.xor_reduce(), (a.count_ones() % 2) == 1);
    }

    /// Simulator and AIG agree on random leaf-module stimulus: the HE
    /// output matches cycle by cycle.
    #[test]
    fn simulator_matches_aig_on_leaf(seed in 0u64..1000) {
        let plan = &build_plans(Scale::Small)[0];
        let module = build_leaf(plan, None);
        let lowered = module.to_aig().unwrap();
        let mut sim = Simulator::new(&module).unwrap();
        let mut stim = UniformRandom::new(seed);
        let he_net = module.find_net("HE").unwrap();
        let mut frames = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..20 {
            let drives = stim.drive(&module, sim.cycle());
            let mut frame = vec![false; lowered.aig.num_inputs()];
            for (net, v) in &drives {
                sim.poke_net(*net, v.clone()).unwrap();
                for bit in 0..v.width() {
                    if let Some(var) = lowered.input_vars.get(&(*net, bit)) {
                        frame[lowered.aig.input_index(*var).unwrap()] = v.bit(bit);
                    }
                }
            }
            sim.settle();
            expected.push(sim.peek_net(he_net));
            sim.step();
            frames.push(frame);
        }
        // Find HE output indices in the AIG (outputs named "HE[b]").
        let he_indices: Vec<usize> = lowered
            .aig
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, o)| o.name.starts_with("HE["))
            .map(|(i, _)| i)
            .collect();
        let reports = lowered.aig.simulate(&frames);
        for (k, rep) in reports.iter().enumerate() {
            for (bit, oi) in he_indices.iter().enumerate() {
                prop_assert_eq!(
                    rep.outputs[*oi],
                    expected[k].bit(bit as u32),
                    "cycle {} HE bit {}", k, bit
                );
            }
        }
    }

    /// Generated chips always verify their own structural invariant:
    /// odd parity of every entity after any number of spec-compliant
    /// cycles.
    #[test]
    fn parity_invariant_under_spec_stimulus(seed in 0u64..200, module_idx in 0usize..11) {
        let plans = build_plans(Scale::Small);
        let plan = &plans[module_idx % plans.len()];
        let module = build_leaf(plan, None);
        let inv = extract(&module).unwrap();
        let mut sim = Simulator::new(&module).unwrap();
        let mut stim = SpecCompliant::new(seed);
        for _ in 0..30 {
            let drives = stim.drive(&module, sim.cycle());
            for (net, v) in drives {
                sim.poke_net(net, v).unwrap();
            }
            sim.settle();
            sim.step();
            for e in &inv.entities {
                prop_assert!(
                    sim.peek_net(e.net).xor_reduce(),
                    "{} lost odd parity", e.name
                );
            }
        }
    }
}
