//! The structural-analysis contract through the public facade:
//!
//! * **Condensation correctness** — Tarjan SCC condensation of the
//!   latch dependency graph agrees with brute-force mutual
//!   reachability on random designs.
//! * **Static order well-formedness** — `force_order` always returns a
//!   permutation of the latch/input slot space and never worsens the
//!   hyperedge span it minimizes.
//! * **`CheckOptions::static_order` neutrality** — seeding the BDD
//!   managers with the FORCE order changes performance, never
//!   semantics: verdict kind, counterexample depth/bad index, and
//!   reachability iteration counts match the natural-order run on
//!   random chipgen properties, across every engine selection.
//! * **Off is off** — with `static_order` disabled (the default) the
//!   run is byte-identical to the default configuration and the span
//!   stats stay zero: the subsystem leaves no trace unless asked for.
//! * **Boundary comb-loop lint** — a seeded combinational cycle in a
//!   netlist is enumerated by `Module::comb_loops` (which never fails,
//!   unlike validation) and rejected by `validate`.

use proptest::prelude::*;
use veridic::aig::LatchId;
use veridic::prelude::*;

/// A random latch network: `deps[i]` lists the latches whose current
/// state feeds latch `i`'s next state (as an AND of positive
/// literals, so the structural support is exactly the dep set).
fn latch_network(deps: &[Vec<usize>]) -> Aig {
    let n = deps.len();
    let mut g = Aig::new();
    let qs: Vec<_> = (0..n).map(|i| g.latch(format!("l{i}"), false)).collect();
    for (i, ds) in deps.iter().enumerate() {
        let mut lits: Vec<_> = ds.iter().map(|&j| qs[j % n].1).collect();
        lits.sort();
        lits.dedup();
        let next = g.and_many(lits);
        g.set_next(qs[i].0, next);
    }
    // A bad cone over everything keeps the whole network relevant.
    let all: Vec<_> = qs.iter().map(|(_, q)| *q).collect();
    let bad = g.and_many(all);
    g.add_bad("all_ones", bad);
    g
}

/// Brute-force reachability closure over the dedup'd dep edges.
fn reachable(deps: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let n = deps.len();
    let mut reach = vec![vec![false; n]; n];
    for (i, ds) in deps.iter().enumerate() {
        for &j in ds {
            reach[i][j % n] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    reach
}

fn chipgen_property(module_idx: usize, with_bugs: bool, vunit_idx: usize) -> (Aig, String) {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs });
    let modules = chip.modules();
    let mi = &modules[module_idx % modules.len()];
    let module = chip.design().module(mi.name()).unwrap();
    let vm = make_verifiable(module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, compiled) = &vunits[vunit_idx % vunits.len()];
    let lowered = compiled.module.to_aig().unwrap();
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    (aig, format!("{}:{} with_bugs={}", mi.name(), vunit_idx, with_bugs))
}

/// Static-order on-vs-off comparison on one AIG under one engine
/// selection: a variable order cannot change set semantics, so the
/// verdict kind, counterexample shape, and fixpoint round count must
/// all survive the seeding.
fn assert_static_order_neutral(aig: &Aig, base: &CheckOptions, what: &str) {
    let on =
        Portfolio::default().check(aig, &CheckOptions { static_order: true, ..base.clone() });
    let off =
        Portfolio::default().check(aig, &CheckOptions { static_order: false, ..base.clone() });
    match (&on.verdict, &off.verdict) {
        (Verdict::Falsified(a), Verdict::Falsified(b)) => {
            assert_eq!(a.len(), b.len(), "cex depth diverged on {what}");
            assert_eq!(a.bad_index, b.bad_index, "bad index diverged on {what}");
        }
        (Verdict::Proved { .. }, Verdict::Proved { .. }) => {}
        (Verdict::ResourceOut { .. }, Verdict::ResourceOut { .. }) => {}
        (a, b) => panic!("static_order changed the verdict on {what}: on={a:?} vs off={b:?}"),
    }
    assert_eq!(
        on.stats.iterations, off.stats.iterations,
        "static_order changed the reachability round count on {what}"
    );
    assert_eq!(
        off.stats.static_order_span_before, 0,
        "off run recorded a span on {what}"
    );
    assert_eq!(off.stats.static_order_span_after, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SCC condensation vs brute-force mutual reachability: two
    /// latches share an SCC iff each reaches the other (or they are
    /// the same latch).
    #[test]
    fn condensation_matches_brute_force_reachability(
        deps in collection::vec(collection::vec(0usize..12, 0..4), 1..12),
    ) {
        let aig = latch_network(&deps);
        let cond = LatchGraph::build(&aig).condense();
        let reach = reachable(&deps);
        let n = deps.len();
        // The SCC partition covers every latch exactly once.
        let mut seen = vec![false; n];
        for scc in &cond.sccs {
            for &m in scc {
                prop_assert!(!seen[m as usize], "latch {m} in two SCCs");
                seen[m as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "latch missing from the partition");
        for (i, reach_i) in reach.iter().enumerate() {
            for j in 0..n {
                let same = cond.scc_of[i] == cond.scc_of[j];
                let mutual = i == j || (reach_i[j] && reach[j][i]);
                prop_assert_eq!(
                    same, mutual,
                    "SCC membership of ({}, {}) disagrees with reachability", i, j
                );
            }
        }
        // Ranks are topological on the condensation: a dependency
        // never sits at a higher rank than its dependent... both
        // directions appear in the wild, so pin only acyclicity:
        // distinct SCCs connected by an edge have distinct ranks.
        for i in 0..n {
            for &j in LatchGraph::build(&aig).deps(LatchId(i as u32)) {
                if cond.scc_of[i] != cond.scc_of[j as usize] {
                    prop_assert!(
                        cond.ranks[cond.scc_of[i] as usize]
                            != cond.ranks[cond.scc_of[j as usize] as usize],
                        "cross-SCC edge within one rank"
                    );
                }
            }
        }
    }

    /// `force_order` always returns a permutation of the slot space
    /// and never reports a worse span than the natural order.
    #[test]
    fn force_order_is_a_span_improving_permutation(
        deps in collection::vec(collection::vec(0usize..12, 0..4), 1..12),
        module_idx in 0usize..16,
    ) {
        let random = latch_network(&deps);
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        let mi = &chip.modules()[module_idx % chip.modules().len()];
        let lowered = chip.design().module(mi.name()).unwrap().to_aig().unwrap();
        for (aig, what) in [(&random, "random"), (&lowered.aig, mi.name())] {
            let fo = force_order(aig);
            let slots = aig.num_latches() + aig.num_inputs();
            let mut sorted = fo.slots.clone();
            sorted.sort_unstable();
            let identity: Vec<u32> = (0..slots as u32).collect();
            prop_assert_eq!(&sorted, &identity, "not a permutation on {}", what);
            prop_assert!(
                fo.span_after <= fo.span_before,
                "FORCE worsened the span on {}: {} -> {}",
                what, fo.span_before, fo.span_after
            );
        }
    }

    /// Seeding the FORCE order is semantics-neutral on the real
    /// workload shape, across every BDD engine selection (the SAT
    /// lane ignores the order entirely, so the full cascade doubles
    /// as the mixed case).
    #[test]
    fn static_order_is_neutral_on_chipgen_properties(
        module_idx in 0usize..32,
        bug_coin in 0u32..2,
        vunit_idx in 0usize..4,
        mode in 0u32..3,
    ) {
        let (aig, what) = chipgen_property(module_idx, bug_coin == 1, vunit_idx);
        let base = match mode {
            0 => CheckOptions::default(),
            1 => CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build(),
            _ => CheckOptions::builder().bdd_only(true).pobdd_window_vars(2).build(),
        };
        assert_static_order_neutral(&aig, &base, &format!("{what} mode={mode}"));
    }
}

/// Off means off: an explicit `static_order: false` run is
/// byte-identical to the default configuration, and the span fields
/// stay zero — the structural pass leaves no trace unless enabled.
/// This mirrors the preanalysis identity-pass pin from PR 8.
#[test]
fn static_order_off_is_byte_identical_to_the_default() {
    let (aig, _) = chipgen_property(0, false, 0);
    for base in [
        CheckOptions::default(),
        CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build(),
    ] {
        let default_run = Portfolio::default().check(&aig, &base);
        let off = Portfolio::default()
            .check(&aig, &CheckOptions { static_order: false, ..base.clone() });
        assert_eq!(default_run.verdict, off.verdict);
        assert_eq!(default_run.stats, off.stats, "explicit off diverged from default");
        assert_eq!(off.stats.static_order_span_before, 0);
        assert_eq!(off.stats.static_order_span_after, 0);
    }
}

/// On a BDD-only run the seeded order leaves its audit trail: the
/// span pair is recorded and the minimized span never exceeds the
/// natural one.
#[test]
fn static_order_records_the_span_improvement() {
    let module = build_order_stress(6);
    let lowered = module.to_aig().unwrap();
    let mut aig = lowered.aig.clone();
    let mismatch = module.ports.iter().find(|p| p.name == "MISMATCH").unwrap().net;
    aig.add_bad("mismatch".to_string(), lowered.bit(mismatch, 0));
    let opts = CheckOptions::builder()
        .bdd_only(true)
        .pobdd_window_vars(0)
        .static_order(true)
        .build();
    let r = check(&aig, &opts);
    assert!(r.verdict.is_proved());
    assert!(r.stats.static_order_span_before > 0, "span audit trail missing");
    assert!(r.stats.static_order_span_after <= r.stats.static_order_span_before);
    // The blocked twin-register file is the canonical win: the FORCE
    // order must strictly improve on the natural span.
    assert!(
        r.stats.static_order_span_after < r.stats.static_order_span_before,
        "FORCE found no improvement on the order-stress design"
    );
}

/// A seeded combinational cycle: `comb_loops` enumerates it on the
/// unvalidated module (lint tooling must not need a clean design),
/// and `validate` rejects the module.
#[test]
fn seeded_comb_loop_is_detected_at_the_boundary() {
    let mut m = Module::new("cyc");
    let a = m.add_net("a", 1);
    let b = m.add_net("b", 1);
    let sb = m.sig(b);
    let na = m.arena.add(Expr::Not(sb));
    m.assign(a, na);
    let sa = m.sig(a);
    let nb = m.arena.add(Expr::Not(sa));
    m.assign(b, nb);
    let out = m.add_port("o", PortDir::Output, 1);
    let so = m.sig(a);
    m.assign(out, so);

    assert_eq!(m.comb_loops(), vec![vec!["a".to_string(), "b".to_string()]]);
    assert!(m.validate().is_err(), "a cyclic module must not validate");

    // And the AIG-side report stays clean on an acyclic design: the
    // boundary lint is the only source of comb_loops entries.
    let (aig, _) = chipgen_property(0, false, 0);
    let report = analyze(&aig);
    assert!(report.comb_loops.is_empty(), "AIGs are acyclic by construction");
}
