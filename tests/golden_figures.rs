//! Golden tests for the paper's figures: the generated artifacts keep
//! the exact shapes of Figures 2, 3, 4 and 6.

use veridic::prelude::*;

/// A minimal Figure-1 module named `M`, for figure-faithful output: one
/// entity (the FSM state A), one input group I, one output group O,
/// 1-bit HE.
fn figure1_module() -> Module {
    let mut m = Module::new("M");
    let i = m.add_port("I", PortDir::Input, 4);
    m.net_mut(i).attrs.insert("checkpoint.kind".into(), "input_group".into());
    m.net_mut(i).attrs.insert("checkpoint.he_bit".into(), "0".into());
    let a = m.add_net("A", 4);
    let si = m.sig(i);
    let sa = m.sig(a);
    let data = m.arena.add(Expr::Slice(sa, 2, 0));
    let idata = m.arena.add(Expr::Slice(si, 2, 0));
    let mixed = m.arena.add(Expr::Xor(data, idata));
    let p = m.arena.add(Expr::RedXor(mixed));
    let np = m.arena.add(Expr::Not(p));
    let nxt = m.arena.add(Expr::Concat(vec![np, mixed]));
    m.add_reg(a, nxt, Value::from_u64(4, 0b1000));
    m.net_mut(a).attrs.insert("checkpoint.kind".into(), "entity".into());
    m.net_mut(a).attrs.insert("checkpoint.entity_kind".into(), "fsm".into());
    m.net_mut(a).attrs.insert("checkpoint.he_bit".into(), "0".into());
    // Checkers: Check1 comb on A; Check2 registered on I.
    let sa2 = m.sig(a);
    let pa = m.arena.add(Expr::RedXor(sa2));
    let bad_a = m.arena.add(Expr::Not(pa));
    let pi = m.arena.add(Expr::RedXor(si));
    let bad_i = m.arena.add(Expr::Not(pi));
    let chk = m.add_net("in_chk_q", 1);
    m.add_reg(chk, bad_i, Value::zero(1));
    let schk = m.sig(chk);
    let he = m.add_port("HE", PortDir::Output, 1);
    m.net_mut(he).attrs.insert("checkpoint.kind".into(), "he".into());
    let he_e = m.arena.add(Expr::Or(bad_a, schk));
    m.assign(he, he_e);
    let o = m.add_port("O", PortDir::Output, 4);
    m.net_mut(o).attrs.insert("checkpoint.kind".into(), "output_group".into());
    let sa3 = m.sig(a);
    m.assign(o, sa3);
    m.validate().unwrap();
    m
}

#[test]
fn figure2_golden() {
    let vm = make_verifiable(&figure1_module()).unwrap();
    let src = edetect_vunit(&vm);
    let expected = "\
vunit M_edetect (M) { // check error detection ability
    property pCheck1_0 = always ((I_ERR_INJ_C & ~(^I_ERR_INJ_D)) -> next HE);
    assert   pCheck1_0; // A should be odd parity
    property pCheck2_0 = always ( ~(^I) -> next HE);
    assert   pCheck2_0; // I should be odd parity
}
";
    assert_eq!(src, expected);
}

#[test]
fn figure3_golden() {
    let vm = make_verifiable(&figure1_module()).unwrap();
    let src = soundness_vunit(&vm);
    let expected = "\
vunit M_soundness (M) { // soundness check
    property pIntegrityI_0 = always ( ^I );
    assume   pIntegrityI_0; // assumption for I
    property pNoErrInjection = always ( ~(|I_ERR_INJ_C) );
    assume   pNoErrInjection; // error injection is disabled
    property pNoError_0 = never ( HE );
    assert   pNoError_0; // then no error is reported
}
";
    assert_eq!(src, expected);
}

#[test]
fn figure4_golden() {
    let vm = make_verifiable(&figure1_module()).unwrap();
    let src = integrity_vunit(&vm);
    let expected = "\
vunit M_integrity (M) { // integrity check
    property pIntegrityI_0 = always ( ^I );
    assume   pIntegrityI_0; // assumption for I
    property pNoErrInjection = always ( ~(|I_ERR_INJ_C) );
    assume   pNoErrInjection; // error injection is disabled
    property pIntegrityO_0 = always ( ^O );
    assert   pIntegrityO_0; // then integrity of O holds
}
";
    assert_eq!(src, expected);
}

#[test]
fn figure1_module_verifies_completely() {
    let vm = make_verifiable(&figure1_module()).unwrap();
    for (genu, compiled) in generate_all(&vm).unwrap() {
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        let r = check(&aig, &CheckOptions::default());
        assert!(r.verdict.is_proved(), "{}: {:?}", genu.unit.name, r.verdict);
    }
}

#[test]
fn figure6_golden_verilog() {
    let vm = make_verifiable(&figure1_module()).unwrap();
    let src = emit_module(&vm.module, None);
    // The Figure-6 idiom: injection ports in the header...
    assert!(src.contains("input  I_ERR_INJ_C"), "{src}");
    assert!(src.contains("input  [3:0] I_ERR_INJ_D"), "{src}");
    // ...and the priority selector on the state register.
    assert!(
        src.contains("(I_ERR_INJ_C ? I_ERR_INJ_D :"),
        "selector missing:\n{src}"
    );
    // Reset value preserved (4'b1000, the paper's 4'b1_000).
    assert!(src.contains("A <= 4'b1000"), "{src}");
    // Round-trip: the Verifiable RTL re-parses and re-elaborates.
    let ast = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let d = elaborate(&ast, "M").unwrap();
    assert_eq!(d.module("M").unwrap().regs.len(), vm.module.regs.len());
}
