//! Simulation vs. formal agreement and the Table-3 detectability story.

use veridic::prelude::*;

/// Helper: first falsified property's trace length on a module's
/// stereotype properties, if any.
fn formal_finds(module: &Module) -> Option<usize> {
    let vm = make_verifiable(module).unwrap();
    for (_g, compiled) in generate_all(&vm).unwrap() {
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        for idx in 0..compiled.asserts.len() {
            let mut stats = CheckStats::default();
            if let Verdict::Falsified(t) =
                check_one(&aig, idx, &CheckOptions::default(), &mut stats)
            {
                return Some(t.len());
            }
        }
    }
    None
}

/// Spec-compliant simulation detection latency, if detected.
fn sim_finds(module: &Module, cycles: u64) -> Option<u64> {
    let mut sim = Simulator::new(module).unwrap();
    let mut stim = SpecCompliant::new(0x7357);
    sim.run_with(&mut stim, cycles, observe_symptom)
        .unwrap()
        .map(|(c, _)| c)
}

#[test]
fn table3_detectability_shape() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let mut easy_latencies = Vec::new();
    let mut hard_outcomes = Vec::new();
    for (module_name, bug) in chip.bugs() {
        let module = chip.design().module(&module_name).unwrap();
        // Formal always finds every bug.
        assert!(formal_finds(module).is_some(), "formal must find {bug}");
        let latency = sim_finds(module, 20_000);
        if bug.easy_in_simulation() {
            let l = latency.unwrap_or_else(|| panic!("{bug} should be easy for simulation"));
            easy_latencies.push((bug, l));
        } else {
            hard_outcomes.push((bug, latency));
        }
    }
    // Easy bugs: found fast.
    for (bug, l) in &easy_latencies {
        assert!(*l < 200, "{bug} latency {l} not 'easy'");
    }
    // Hard bugs: either never found (B1, B3) or orders of magnitude
    // slower than the easy ones (B5, B6).
    let easy_max = easy_latencies.iter().map(|(_, l)| *l).max().unwrap();
    for (bug, latency) in &hard_outcomes {
        match bug {
            BugId::B1 | BugId::B3 => {
                assert_eq!(*latency, None, "{bug} must be invisible to spec-compliant sim");
            }
            BugId::B5 | BugId::B6 => {
                if let Some(l) = latency {
                    assert!(
                        *l > easy_max * 3,
                        "{bug} latency {l} too close to easy bugs ({easy_max})"
                    );
                }
            }
            other => panic!("unexpected hard bug {other}"),
        }
    }
}

#[test]
fn clean_modules_agree_between_sim_and_formal() {
    // On clean modules, neither simulation (spec stimulus) nor formal
    // verification reports anything.
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
    for mi in chip.modules().iter().take(4) {
        let module = chip.design().module(mi.name()).unwrap();
        assert_eq!(formal_finds(module), None, "{}", mi.name());
        assert_eq!(sim_finds(module, 1_000), None, "{}", mi.name());
    }
}

#[test]
fn formal_counterexample_reproduces_symptom_in_simulator() {
    // Take B0's counterexample and drive the *raw module* with it on the
    // word-level simulator: the HE false alarm must appear.
    let plans = build_plans(Scale::Small);
    let module = build_leaf(&plans[0], Some(BugId::B0));
    let vm = make_verifiable(&module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, compiled) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::Soundness)
        .unwrap();
    let lowered = compiled.module.to_aig().unwrap();
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    let mut trace = None;
    for idx in 0..compiled.asserts.len() {
        let mut stats = CheckStats::default();
        if let Verdict::Falsified(t) = check_one(&aig, idx, &CheckOptions::default(), &mut stats)
        {
            trace = Some(t);
            break;
        }
    }
    let trace = trace.expect("B0 falsifies a soundness property");

    // Replay input values cycle by cycle on the instrumented module and
    // watch HE.
    let im = &compiled.module;
    let mut sim = Simulator::new(im).unwrap();
    let inputs: Vec<(NetId, String, u32)> = im
        .inputs()
        .map(|p| (p.net, p.name.clone(), im.net_width(p.net)))
        .collect();
    let mut he_fired = false;
    for frame in &trace.inputs {
        for (net, name, width) in &inputs {
            let mut v = Value::zero(*width);
            for b in 0..*width {
                // AIG input naming: "<net>[<bit>]".
                let key = format!("{name}[{b}]");
                if let Some(pos) = aig
                    .inputs()
                    .iter()
                    .position(|(_, n)| *n == key)
                {
                    if frame[pos] {
                        v.set_bit(b, true);
                    }
                }
            }
            sim.poke_net(*net, v).unwrap();
        }
        sim.settle();
        if !sim.peek("HE").unwrap().is_zero() {
            he_fired = true;
        }
        sim.step();
    }
    assert!(he_fired, "counterexample must raise HE on the simulator");
}
