//! Failure-injection (mutation) testing of the methodology itself: the
//! stereotype property set must catch every targeted defect class the
//! paper's checkpoints are designed to guard. Each mutation models a
//! realistic RTL slip; the campaign on the mutated module must falsify
//! at least one property of the expected type.

use veridic::prelude::*;

/// Checks all stereotype properties of `module`; returns the property
/// types that were falsified.
fn falsified_types(module: &Module) -> Vec<PropertyType> {
    let vm = make_verifiable(module).unwrap();
    let mut out = Vec::new();
    for (g, compiled) in generate_all(&vm).unwrap() {
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        for idx in 0..compiled.asserts.len() {
            let mut stats = CheckStats::default();
            if check_one(&aig, idx, &CheckOptions::default(), &mut stats).is_falsified() {
                out.push(g.ptype);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn base_module() -> Module {
    let plan = &build_plans(Scale::Small)[0];
    build_leaf(plan, None)
}

/// Mutation: stuck-at-zero parity bit on entity 0 — the classic
/// "designer forgot the parity flop" defect. Soundness must catch it.
#[test]
fn mutation_stuck_parity_bit_caught_by_soundness() {
    let mut m = base_module();
    let ent = m.find_net("ent0_legal_fsm").or_else(|| m.find_net("ent0_fsm")).unwrap();
    let w = m.net_width(ent);
    let idx = m.regs.iter().position(|r| r.q == ent).unwrap();
    let old_next = m.regs[idx].next;
    // next' = {1'b0, old_next[w-2:0]}: parity bit stuck at 0.
    let data = m.arena.add(Expr::Slice(old_next, w - 2, 0));
    let zero = m.arena.add(Expr::Const(Value::zero(1)));
    let stuck = m.arena.add(Expr::Concat(vec![zero, data]));
    m.regs[idx].next = stuck;
    let types = falsified_types(&m);
    assert!(
        types.contains(&PropertyType::Soundness),
        "stuck parity must violate soundness, got {types:?}"
    );
}

/// Mutation: a checker is disconnected (Check1 dropped for entity 0) —
/// exactly what the P0 error-detection properties exist to catch.
#[test]
fn mutation_disconnected_checker_caught_by_edetect() {
    let mut m = base_module();
    // The HE expression ORs entity checkers; rebuild HE without entity
    // 0's contribution by rewriting the HE assign: replace the parity
    // check of ent0 with constant 0. Easiest faithful emulation: drive
    // the entity's checker input from a constant-odd value.
    let ent = m.find_net("ent0_legal_fsm").or_else(|| m.find_net("ent0_fsm")).unwrap();
    let w = m.net_width(ent);
    // Find the HE assign and substitute: create a shadow net that the
    // checker reads; here we simply re-point the HE expression by adding
    // a fresh module where the checker term uses a constant.
    // Implementation: swap the RedXor(ent0) term by rebuilding the whole
    // HE expression is intrusive; instead, emulate the defect by gating
    // the entity checker with constant false at its source: wire the
    // entity output into HE via a constant-odd proxy.
    let he = m.find_port("HE").unwrap().net;
    let he_w = m.net_width(he);
    let aidx = m.assigns.iter().position(|(n, _)| *n == he).unwrap();
    // Constant odd-parity value of the entity's width => its checker term
    // is always 0.
    let mut cv = Value::zero(w);
    cv.set_bit(0, true);
    let cexpr = m.arena.add(Expr::Const(cv));
    let he_expr = m.assigns[aidx].1;
    let rebuilt = substitute_net(&mut m, he_expr, ent, cexpr);
    assert_ne!(rebuilt, he_expr, "substitution must change HE");
    m.assigns[aidx].1 = rebuilt;
    let _ = he_w;
    let types = falsified_types(&m);
    assert!(
        types.contains(&PropertyType::ErrorDetection),
        "disconnected checker must violate error-detection ability, got {types:?}"
    );
}

/// Mutation: an output group drops its parity-correction constant —
/// output integrity must catch it.
#[test]
fn mutation_output_parity_drop_caught_by_integrity() {
    let mut m = base_module();
    let o0 = m.find_net("O0").unwrap();
    let aidx = m.assigns.iter().position(|(n, _)| *n == o0).unwrap();
    let w = m.net_width(o0);
    // XOR the output with a single bit: flips parity to even whenever
    // that extra term is odd... use constant 1 bit: permanent parity flip.
    let mut cv = Value::zero(w);
    cv.set_bit(0, true);
    let c = m.arena.add(Expr::Const(cv));
    let flipped = m.arena.add(Expr::Xor(m.assigns[aidx].1, c));
    m.assigns[aidx].1 = flipped;
    let types = falsified_types(&m);
    assert!(
        types.contains(&PropertyType::OutputIntegrity),
        "dropped parity correction must violate integrity, got {types:?}"
    );
}

/// Mutation: legal-state FSM gains an escape transition — the P3
/// legal-state property must catch it.
#[test]
fn mutation_fsm_escape_caught_by_other() {
    let mut m = base_module();
    let Some(ent) = m.find_net("ent0_legal_fsm") else {
        // Plan without P3 on entity 0: nothing to test here.
        return;
    };
    let w = m.net_width(ent);
    let idx = m.regs.iter().position(|r| r.q == ent).unwrap();
    // Replace the wrap-at-4 update with free increment: data can reach 7.
    let sq = m.regs[idx].next; // injected? no — base module, plain next
    let _ = sq;
    let s = m.sig(ent);
    let data = m.arena.add(Expr::Slice(s, w - 2, 0));
    let one = m.arena.add(Expr::Const(Value::from_u64(w - 1, 1)));
    let inc = m.arena.add(Expr::Add(data, one));
    let p = m.arena.add(Expr::RedXor(inc));
    let np = m.arena.add(Expr::Not(p));
    let next = m.arena.add(Expr::Concat(vec![np, inc]));
    m.regs[idx].next = next;
    let types = falsified_types(&m);
    assert!(
        types.contains(&PropertyType::Other),
        "FSM escape must violate the legal-state property, got {types:?}"
    );
}

/// Substitutes references to `net` inside `expr` with `replacement`,
/// returning the rebuilt expression id.
fn substitute_net(
    m: &mut Module,
    expr: veridic::netlist::ExprId,
    net: NetId,
    replacement: veridic::netlist::ExprId,
) -> veridic::netlist::ExprId {
    use veridic::netlist::Expr as E;
    let node = m.arena.node(expr).clone();
    match node {
        E::Net(n) if n == net => replacement,
        E::Const(_) | E::Net(_) => expr,
        E::Not(a) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::Not(a))
        }
        E::And(a, b) => rebuild2(m, a, b, net, replacement, E::And),
        E::Or(a, b) => rebuild2(m, a, b, net, replacement, E::Or),
        E::Xor(a, b) => rebuild2(m, a, b, net, replacement, E::Xor),
        E::Add(a, b) => rebuild2(m, a, b, net, replacement, E::Add),
        E::Sub(a, b) => rebuild2(m, a, b, net, replacement, E::Sub),
        E::Mul(a, b) => rebuild2(m, a, b, net, replacement, E::Mul),
        E::Eq(a, b) => rebuild2(m, a, b, net, replacement, E::Eq),
        E::Ne(a, b) => rebuild2(m, a, b, net, replacement, E::Ne),
        E::Ult(a, b) => rebuild2(m, a, b, net, replacement, E::Ult),
        E::Ule(a, b) => rebuild2(m, a, b, net, replacement, E::Ule),
        E::RedAnd(a) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::RedAnd(a))
        }
        E::RedOr(a) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::RedOr(a))
        }
        E::RedXor(a) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::RedXor(a))
        }
        E::Shl(a, k) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::Shl(a, k))
        }
        E::Shr(a, k) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::Shr(a, k))
        }
        E::Mux { cond, then_, else_ } => {
            let cond = substitute_net(m, cond, net, replacement);
            let then_ = substitute_net(m, then_, net, replacement);
            let else_ = substitute_net(m, else_, net, replacement);
            m.arena.add(E::Mux { cond, then_, else_ })
        }
        E::Concat(parts) => {
            let parts = parts
                .into_iter()
                .map(|p| substitute_net(m, p, net, replacement))
                .collect();
            m.arena.add(E::Concat(parts))
        }
        E::Repeat(n, a) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::Repeat(n, a))
        }
        E::Slice(a, hi, lo) => {
            let a = substitute_net(m, a, net, replacement);
            m.arena.add(E::Slice(a, hi, lo))
        }
    }
}

fn rebuild2(
    m: &mut Module,
    a: veridic::netlist::ExprId,
    b: veridic::netlist::ExprId,
    net: NetId,
    replacement: veridic::netlist::ExprId,
    mk: fn(veridic::netlist::ExprId, veridic::netlist::ExprId) -> veridic::netlist::Expr,
) -> veridic::netlist::ExprId {
    let a = substitute_net(m, a, net, replacement);
    let b = substitute_net(m, b, net, replacement);
    m.arena.add(mk(a, b))
}
