//! Property-based determinism tests for the intra-property parallel
//! machinery: the threaded POBDD engine must be bit-for-bit equivalent
//! to the serial one for any worker count, and the cross-manager BDD
//! transfer layer must preserve both structure (node count) and
//! semantics (truth table) in a roundtrip.

use proptest::prelude::*;
use veridic::bdd::transfer;
use veridic::bdd::{BddManager, NodeId};
use veridic::mc::BddEngineOutcome;
use veridic::prelude::*;

/// A random small sequential design with one bad.
#[derive(Clone, Debug)]
enum Design {
    /// `bits`-bit ripple counter; bad fires when the count equals
    /// `bad_at` (always reachable: counters wrap).
    Counter { bits: u32, bad_at: u64 },
    /// Shift register with xor feedback from `taps` (an LFSR when the
    /// taps are primitive); bad is the state matching `bad_mask` — some
    /// masks are off-orbit, so this generates proofs too.
    ShiftXor { bits: u32, taps: u64, bad_mask: u64 },
    /// Counter plus a stuck-at-false latch as the bad: always proved.
    Stuck { bits: u32 },
}

fn build_counter(g: &mut Aig, bits: u32) -> Vec<veridic::aig::Lit> {
    let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
    let mut carry = veridic::aig::Lit::TRUE;
    for (id, q) in &qs {
        let next = g.xor(*q, carry);
        carry = g.and(*q, carry);
        g.set_next(*id, next);
    }
    qs.into_iter().map(|(_, q)| q).collect()
}

fn state_match(g: &mut Aig, qs: &[veridic::aig::Lit], mask: u64) -> veridic::aig::Lit {
    let hit: Vec<_> = qs
        .iter()
        .enumerate()
        .map(|(i, q)| if mask >> i & 1 == 1 { *q } else { !*q })
        .collect();
    g.and_many(hit)
}

fn build(design: &Design) -> Aig {
    let mut g = Aig::new();
    match design {
        Design::Counter { bits, bad_at } => {
            let qs = build_counter(&mut g, *bits);
            let bad = state_match(&mut g, &qs, bad_at & ((1 << bits) - 1));
            g.add_bad("count_hit", bad);
        }
        Design::ShiftXor { bits, taps, bad_mask } => {
            let bits = *bits as usize;
            let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("s{i}"), i == 0)).collect();
            // Feedback: xor of the tapped stages (always include the
            // last stage so every latch matters).
            let mut fb = qs[bits - 1].1;
            for (i, (_, q)) in qs.iter().enumerate().take(bits - 1) {
                if taps >> i & 1 == 1 {
                    fb = g.xor(fb, *q);
                }
            }
            for i in (1..bits).rev() {
                g.set_next(qs[i].0, qs[i - 1].1);
            }
            g.set_next(qs[0].0, fb);
            let lits: Vec<_> = qs.iter().map(|(_, q)| *q).collect();
            let bad = state_match(&mut g, &lits, bad_mask & ((1 << bits) - 1));
            g.add_bad("state_hit", bad);
        }
        Design::Stuck { bits } => {
            let _ = build_counter(&mut g, *bits);
            let (l, s) = g.latch("stuck", false);
            g.set_next(l, s);
            g.add_bad("never", s);
        }
    }
    g
}

fn design_strategy() -> impl Strategy<Value = Design> {
    prop_oneof![
        (2u32..5, 0u64..32).prop_map(|(bits, bad_at)| Design::Counter { bits, bad_at }),
        (3u32..6, 0u64..32, 0u64..64)
            .prop_map(|(bits, taps, bad_mask)| Design::ShiftXor { bits, taps, bad_mask }),
        (2u32..5, 0u64..1).prop_map(|(bits, _)| Design::Stuck { bits }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole determinism contract: for any small design, window
    /// split and worker count — serial (1), threaded (2, 3) and auto
    /// (0) — the POBDD engine reports the identical outcome,
    /// falsification depth and completed-round count.
    #[test]
    fn parallel_pobdd_matches_serial(
        design in design_strategy(),
        window_vars in 1u32..4,
    ) {
        let aig = build(&design);
        let mut serial = CheckStats::default();
        let base = pobdd_reach(&aig, window_vars, 1, 1 << 20, 200, &mut serial);
        prop_assert!(
            !matches!(base, BddEngineOutcome::ResourceOut),
            "generated designs must conclude under the generous budget: {design:?}"
        );
        for workers in [2usize, 3, 0] {
            let mut stats = CheckStats::default();
            let got = pobdd_reach(&aig, window_vars, workers, 1 << 20, 200, &mut stats);
            prop_assert_eq!(
                &base, &got,
                "outcome diverged at workers={} for {:?}", workers, &design
            );
            prop_assert_eq!(
                serial.iterations, stats.iterations,
                "iteration count diverged at workers={} for {:?}", workers, &design
            );
            prop_assert!(!stats.worker_bdd.is_empty(), "per-worker stats must be recorded");
        }
    }

    /// Transfer-layer roundtrip: export/import preserves the node count
    /// and the full truth table for arbitrary functions (built from a
    /// random truth table, so every shape of sharing and complement
    /// placement shows up), both into a fresh manager and into one that
    /// already holds unrelated nodes.
    #[test]
    fn transfer_roundtrip_preserves_count_and_truth_table(
        nvars in 2u32..6,
        table in 0u64..u64::MAX,
        complement_root in 0u32..2,
    ) {
        let rows = 1u64 << nvars;
        let table = table & ((1u128 << rows) as u64).wrapping_sub(1);
        let mut src = BddManager::new(1 << 16);
        // Build the function as an OR of minterms.
        let mut f = NodeId::FALSE;
        for row in 0..rows {
            if table >> row & 1 == 1 {
                let mut term = NodeId::TRUE;
                for v in 0..nvars {
                    let lit = if row >> v & 1 == 1 {
                        src.var(v).unwrap()
                    } else {
                        src.nvar(v).unwrap()
                    };
                    term = src.and(term, lit).unwrap();
                }
                f = src.or(f, term).unwrap();
            }
        }
        let f = if complement_root == 1 { !f } else { f };
        let exported = transfer::export(&src, f);
        prop_assert_eq!(exported.node_count(), src.size(f), "export must cover exactly the cone");

        // Fresh destination manager.
        let mut fresh = BddManager::new(1 << 16);
        let g = transfer::import(&exported, &mut fresh).unwrap();
        prop_assert_eq!(fresh.size(g), src.size(f), "node count must survive the roundtrip");

        // Populated destination manager (unrelated junk + armed GC).
        let mut busy = BddManager::new(1 << 16);
        let a = busy.var(0).unwrap();
        let b = busy.var(nvars - 1).unwrap();
        let junk = busy.xor(a, b).unwrap();
        busy.protect(junk);
        let h = transfer::import(&exported, &mut busy).unwrap();
        prop_assert_eq!(busy.size(h), src.size(f));

        for asg in 0..rows {
            let want = src.eval(f, &|v| asg >> v & 1 == 1);
            prop_assert_eq!(fresh.eval(g, &|v| asg >> v & 1 == 1), want, "fresh, row {}", asg);
            prop_assert_eq!(busy.eval(h, &|v| asg >> v & 1 == 1), want, "busy, row {}", asg);
        }
    }
}
