//! Campaign-service contracts at the facade level: the checkpoint
//! codec round-trips arbitrary run state (including BDD exports whose
//! level order diverged from the source manager), every corruption
//! mode fails with a typed error — never a panic or a silent wrong
//! resume — and turning the adaptive scheduler *off* preserves the
//! default portfolio cascade exactly.

use proptest::prelude::*;

use veridic::bdd::{DeltaBdd, ExportedBdd};
use veridic::campaign::codec::{decode_record, encode_record};
use veridic::campaign::{CheckpointFile, CodecError, PersistedState};
use veridic::mc::{EngineCheckpoint, ReachCheckpoint, RunCheckpoint};
use veridic::prelude::*;

// ---------------------------------------------------------------------
// Generators (the vendored proptest shim: map-based, no flat_map)
// ---------------------------------------------------------------------

/// Folds an unconstrained raw value into a slot reference valid over
/// `limit` earlier slots: a terminal (`0`/`1`) or `((j+1)<<1)|c` for a
/// slot `j < limit`.
fn fold_ref(raw: u32, limit: usize) -> u32 {
    let space = 2 + 2 * u32::try_from(limit).expect("tiny test sizes");
    let v = raw % space;
    if v < 2 {
        v
    } else {
        let (j, c) = ((v - 2) / 2, (v - 2) % 2);
        ((j + 1) << 1) | c
    }
}

type RawNodes = Vec<(u32, u32, u32)>;

/// Raw material for one export: unconstrained node triples, an
/// unconstrained root, and an arbitrary **diverged** level order (not
/// required to be an identity permutation — matching a checkpoint
/// taken after dynamic reordering moved the source manager's order).
fn arb_export_parts() -> BoxedStrategy<(RawNodes, u32, Vec<u32>)> {
    (
        collection::vec((0u32..64, 0u32..1_000_000, 0u32..1_000_000), 0..10),
        0u32..1_000_000,
        collection::vec(0u32..64, 0..12),
    )
        .boxed()
}

fn build_exported(parts: (RawNodes, u32, Vec<u32>)) -> ExportedBdd {
    let (raw, root, order) = parts;
    let nodes: RawNodes = raw
        .iter()
        .enumerate()
        .map(|(k, (var, lo, hi))| (*var, fold_ref(*lo, k), fold_ref(*hi, k)))
        .collect();
    let root = fold_ref(root, nodes.len());
    ExportedBdd::from_raw_parts(nodes, root, order).expect("folded refs are always valid")
}

fn arb_exported() -> BoxedStrategy<ExportedBdd> {
    arb_export_parts().prop_map(build_exported)
}

fn arb_delta() -> BoxedStrategy<DeltaBdd> {
    (0usize..6, arb_export_parts()).prop_map(|(baseline, (raw, root, order))| {
        let nodes: RawNodes = raw
            .iter()
            .enumerate()
            .map(|(k, (var, lo, hi))| (*var, fold_ref(*lo, baseline + k), fold_ref(*hi, baseline + k)))
            .collect();
        let root = fold_ref(root, baseline + nodes.len());
        DeltaBdd::from_raw_parts(baseline, nodes, root, order)
            .expect("folded refs are always valid")
    })
}

fn arb_run_checkpoint() -> BoxedStrategy<RunCheckpoint> {
    (
        (0usize..8, 0usize..4, collection::vec(arb_exported(), 0..3)),
        (
            collection::vec(arb_delta(), 0..3),
            0usize..50,
            0u32..8,
            collection::vec(collection::vec(97u8..123, 0..8), 0..3),
        ),
    )
        .prop_map(|((bad_index, slot, reached), (frontier, depth, window_vars, reasons))| {
            RunCheckpoint {
                bad_index,
                slot,
                state: EngineCheckpoint::Reach(ReachCheckpoint {
                    depth,
                    reached,
                    frontier,
                    window_vars,
                }),
                stats: CheckStats::default(),
                reasons: reasons
                    .into_iter()
                    .map(|b| String::from_utf8(b).expect("ascii bytes"))
                    .collect(),
            }
        })
        .boxed()
}

fn file_of(state: PersistedState) -> CheckpointFile {
    CheckpointFile { aig_fingerprint: 0x1234, options_fingerprint: 0x5678, state }
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize ∘ deserialize is the identity on arbitrary run
    /// checkpoints — proved by re-encoding (the encoder is
    /// deterministic, so byte equality is structural equality).
    #[test]
    fn checkpoint_round_trips(ck in arb_run_checkpoint()) {
        let file = file_of(PersistedState::Portfolio(Box::new(ck)));
        let bytes = file.encode();
        let decoded = match CheckpointFile::decode(&bytes, Some((0x1234, 0x5678))) {
            Ok(f) => f,
            Err(e) => return Err(format!("valid checkpoint failed to decode: {e}")),
        };
        prop_assert_eq!(bytes, decoded.encode());
    }

    /// Exported BDDs with diverged level orders survive the trip with
    /// their raw structure intact.
    #[test]
    fn exported_bdd_structure_survives(bdd in arb_exported()) {
        let ck = RunCheckpoint {
            bad_index: 0,
            slot: 2,
            state: EngineCheckpoint::Reach(ReachCheckpoint {
                depth: 1,
                reached: vec![bdd.clone()],
                frontier: vec![],
                window_vars: 0,
            }),
            stats: CheckStats::default(),
            reasons: vec![],
        };
        let bytes = file_of(PersistedState::Portfolio(Box::new(ck))).encode();
        let decoded = match CheckpointFile::decode(&bytes, None) {
            Ok(f) => f,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        let PersistedState::Portfolio(ck) = decoded.state else {
            return Err("wrong state kind".to_string());
        };
        let EngineCheckpoint::Reach(reach) = ck.state else {
            return Err("wrong engine checkpoint".to_string());
        };
        let out = &reach.reached[0];
        prop_assert_eq!(out.source_order(), bdd.source_order());
        prop_assert_eq!(out.raw_root(), bdd.raw_root());
        prop_assert_eq!(
            out.raw_nodes().collect::<Vec<_>>(),
            bdd.raw_nodes().collect::<Vec<_>>()
        );
    }

    /// Truncating an encoded checkpoint at *any* byte boundary yields a
    /// typed error — never a panic, never a successful decode.
    #[test]
    fn any_truncation_fails_loud(ck in arb_run_checkpoint(), cut_raw in 0usize..100_000) {
        let bytes = file_of(PersistedState::Portfolio(Box::new(ck))).encode();
        let cut = cut_raw % bytes.len();
        prop_assert!(CheckpointFile::decode(&bytes[..cut], None).is_err());
    }

    /// Flipping any single byte is caught (checksum, magic, version or
    /// a downstream structural check) — typed error, never a panic.
    #[test]
    fn any_flipped_byte_fails_loud(
        ck in arb_run_checkpoint(),
        pos_raw in 0usize..100_000,
        flip_raw in 0u32..255,
    ) {
        let mut bytes = file_of(PersistedState::Portfolio(Box::new(ck))).encode();
        let pos = pos_raw % bytes.len();
        #[allow(clippy::cast_possible_truncation)]
        let flip = (flip_raw + 1) as u8;
        bytes[pos] ^= flip;
        prop_assert!(CheckpointFile::decode(&bytes, None).is_err());
    }
}

// ---------------------------------------------------------------------
// Fingerprint binding
// ---------------------------------------------------------------------

#[test]
fn wrong_fingerprints_are_typed_refusals() {
    let ck = RunCheckpoint {
        bad_index: 0,
        slot: 0,
        state: EngineCheckpoint::Bmc { next_depth: 3 },
        stats: CheckStats::default(),
        reasons: vec![],
    };
    let bytes = file_of(PersistedState::Portfolio(Box::new(ck))).encode();
    // Same bytes, resumed against a different chip: refused by name.
    match CheckpointFile::decode(&bytes, Some((0xdead, 0x5678))) {
        Err(CodecError::AigFingerprint { expected: 0xdead, found: 0x1234 }) => {}
        other => panic!("expected AigFingerprint error, got {other:?}"),
    }
    // Same chip, different options: the *other* typed error.
    match CheckpointFile::decode(&bytes, Some((0x1234, 0xbeef))) {
        Err(CodecError::OptionsFingerprint { expected: 0xbeef, found: 0x5678 }) => {}
        other => panic!("expected OptionsFingerprint error, got {other:?}"),
    }
    // Unbound inspection still works on the same bytes.
    assert!(CheckpointFile::decode(&bytes, None).is_ok());
}

#[test]
fn journal_records_round_trip_and_reject_damage() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
    let mi = &chip.modules()[0];
    let (props, errors) = veridic::core::flow::module_properties(&chip, mi);
    assert!(errors.is_empty(), "module preparation failed: {errors:?}");
    let prop = &props[0];
    let mut stats = CheckStats::default();
    let verdict = veridic::mc::check_one(&prop.aig, prop.bad_index, &CheckOptions::default(), &mut stats);
    let record = veridic::core::flow::record_from_result(
        prop,
        veridic::mc::CheckResult { verdict, stats },
        std::time::Duration::from_millis(7),
    );
    let bytes = encode_record(&record);
    let decoded = decode_record(&bytes).expect("healthy record must decode");
    assert_eq!(bytes, encode_record(&decoded), "re-encode must be byte-identical");
    let mut damaged = bytes.clone();
    damaged[bytes.len() / 2] ^= 0x40;
    assert!(decode_record(&damaged).is_err(), "flipped byte must be caught");
    assert!(decode_record(&bytes[..bytes.len() - 3]).is_err(), "truncation must be caught");
}

// ---------------------------------------------------------------------
// Default-order preservation when the adaptive scheduler is off
// ---------------------------------------------------------------------

/// Runs one property through the daemon's non-adaptive slice loop
/// (fixed 1-round slices, suspend/resume at every boundary).
fn run_sliced(prop: &veridic::core::flow::PreparedProperty, opts: &CheckOptions) -> CheckResult {
    let portfolio = Portfolio::default();
    let mut outcome = portfolio.check_bad_with_budget(
        &prop.aig,
        prop.bad_index,
        opts,
        CheckStats::default(),
        &mut Budget::rounds(1),
    );
    loop {
        match outcome {
            PortfolioOutcome::Done(result) => break result,
            PortfolioOutcome::Suspended(ck) => {
                outcome =
                    portfolio.resume_bad_with_budget(&prop.aig, opts, ck, &mut Budget::rounds(1));
            }
        }
    }
}

/// With `adaptive` off, the daemon's slice loop drives
/// `Portfolio::default()` through suspend/resume — the verdict and the
/// engine *order* (bmc → induction → bdd-umc → pobdd-umc, by first
/// event) must match a plain uninterrupted check of the same property,
/// and two sliced runs must agree event-for-event (the determinism
/// Table-2 byte equality rests on). Slicing may only add per-slice
/// `Suspended` progress events; it must never reorder the cascade.
#[test]
fn non_adaptive_slicing_preserves_the_default_cascade() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let opts = CheckOptions::default();
    let mut compared = 0;
    for mi in chip.modules().iter().take(3) {
        let (props, _) = veridic::core::flow::module_properties(&chip, mi);
        for prop in props.iter().take(2) {
            let mut ref_stats = CheckStats::default();
            let ref_verdict =
                veridic::mc::check_one(&prop.aig, prop.bad_index, &opts, &mut ref_stats);
            let sliced = run_sliced(prop, &opts);
            assert_eq!(sliced.verdict, ref_verdict, "{}/{}", prop.module, prop.label);
            let cascade = |stats: &CheckStats| {
                let mut engines: Vec<&str> =
                    stats.events.iter().map(|e| e.engine.as_str()).collect();
                engines.dedup();
                engines
            };
            assert_eq!(
                cascade(&sliced.stats),
                cascade(&ref_stats),
                "engine cascade order must be preserved for {}/{}",
                prop.module,
                prop.label
            );
            let again = run_sliced(prop, &opts);
            assert_eq!(again.verdict, sliced.verdict);
            assert_eq!(
                again.stats.events, sliced.stats.events,
                "sliced runs must be deterministic for {}/{}",
                prop.module, prop.label
            );
            compared += 1;
        }
    }
    assert!(compared >= 4, "too few properties compared: {compared}");
}
