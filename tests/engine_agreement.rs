//! Cross-engine consistency: SAT-only and BDD-only portfolios must agree
//! on every property of a generated module — the reproduction analogue
//! of running both the "commercial tool" and the "in-house engine".

use veridic::prelude::*;

fn aig_for(compiled: &veridic::psl::CompiledVUnit) -> Aig {
    let lowered = compiled.module.to_aig().unwrap();
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    aig
}

#[test]
fn sat_and_bdd_portfolios_agree_on_buggy_module() {
    let plans = build_plans(Scale::Small);
    let module = build_leaf(&plans[0], Some(BugId::B0));
    let vm = make_verifiable(&module).unwrap();
    let portfolio = Portfolio::default();
    let sat_opts = CheckOptions::builder().sat_only(true).build();
    let bdd_opts = CheckOptions::builder().bdd_only(true).build();
    for (genu, compiled) in generate_all(&vm).unwrap() {
        let aig = aig_for(&compiled);
        for idx in 0..compiled.asserts.len() {
            let mut s1 = CheckStats::default();
            let mut s2 = CheckStats::default();
            let v_sat = portfolio.check_bad(&aig, idx, &sat_opts, &mut s1);
            let v_bdd = portfolio.check_bad(&aig, idx, &bdd_opts, &mut s2);
            match (&v_sat, &v_bdd) {
                (Verdict::Proved { .. }, Verdict::Proved { .. }) => {}
                (Verdict::Falsified(a), Verdict::Falsified(b)) => {
                    assert_eq!(
                        a.len(),
                        b.len(),
                        "cex depth differs on {}/{}",
                        genu.unit.name,
                        compiled.asserts[idx].0
                    );
                }
                other => panic!(
                    "engines disagree on {}/{}: {other:?}",
                    genu.unit.name, compiled.asserts[idx].0
                ),
            }
        }
    }
}

#[test]
fn pobdd_agrees_with_monolithic_bdd_on_clean_module() {
    let plans = build_plans(Scale::Small);
    let module = build_leaf(&plans[3.min(plans.len() - 1)], None);
    let vm = make_verifiable(&module).unwrap();
    // POBDD-forced portfolio: starve the monolithic BDD so the POBDD
    // fallback concludes, then compare against a generous BDD run.
    for (_, compiled) in generate_all(&vm).unwrap().into_iter().take(2) {
        let aig = aig_for(&compiled);
        for idx in 0..compiled.asserts.len().min(3) {
            let mut s1 = CheckStats::default();
            let generous = CheckOptions::builder().bdd_only(true).build();
            let v1 = check_one(&aig, idx, &generous, &mut s1);
            let mut s2 = CheckStats::default();
            let pobdd = CheckOptions::builder().bdd_only(true).pobdd_window_vars(3).build();
            let v2 = check_one(&aig, idx, &pobdd, &mut s2);
            assert_eq!(
                v1.is_proved(),
                v2.is_proved(),
                "POBDD-enabled portfolio disagrees at assert {idx}"
            );
        }
    }
}
