//! The static pre-analysis contract through the public facade:
//!
//! * **Neutrality** — `preanalysis` on vs off produces the same verdict
//!   kind, the same falsification depth and bad index, and the same
//!   iteration counts, for every engine selection in the portfolio
//!   (full cascade, BDD-only, SAT-only), on random chipgen properties
//!   and on random small sequential designs. When the sweep finds
//!   nothing to fold the stage is an *identity pass*: every statistic
//!   is byte-identical.
//! * **Vacuity short-circuit** — a statically-constant bad concludes
//!   with zero engine invocations: one `preanalysis` event, zero
//!   rounds, and the vacuous/folded counts surfaced in `CheckStats`.
//! * **Campaign equivalence** — the full small-chip campaign renders
//!   and records identically with the stage on or off.

use proptest::prelude::*;
use veridic::prelude::*;

/// On-vs-off comparison on one AIG under one engine selection.
///
/// Verdict kind, counterexample depth and bad index must always agree.
/// When the sweep found no stuck latches the fold is skipped entirely
/// and the run must be byte-identical (modulo the preanalysis counter
/// block itself); when something folded, the substitution is exact on
/// every reachable behaviour, so depths and reachability iteration
/// counts still must not move.
fn assert_preanalysis_neutral(aig: &Aig, base: &CheckOptions, what: &str) {
    let on = Portfolio::default().check(aig, &CheckOptions { preanalysis: true, ..base.clone() });
    let off = Portfolio::default().check(aig, &CheckOptions { preanalysis: false, ..base.clone() });
    match (&on.verdict, &off.verdict) {
        (Verdict::Falsified(a), Verdict::Falsified(b)) => {
            assert_eq!(a.len(), b.len(), "cex depth diverged on {what}");
            assert_eq!(a.bad_index, b.bad_index, "bad index diverged on {what}");
        }
        (Verdict::Proved { .. }, Verdict::Proved { .. }) => {}
        (Verdict::ResourceOut { .. }, Verdict::ResourceOut { .. }) => {}
        // A static conclusion may beat an engine that ran out of budget:
        // the constraint-aware sweep proves assumption-implied goals the
        // engines would need real work to settle.
        (Verdict::Proved { .. }, Verdict::ResourceOut { .. })
            if on.stats.preanalysis.vacuous > 0 => {}
        (a, b) => panic!("preanalysis changed the verdict on {what}: on={a:?} vs off={b:?}"),
    }
    if on.stats.preanalysis.vacuous == 0 {
        // The stage did not conclude statically, so the engines ran on
        // both sides and their fixpoint rounds must agree. (When the
        // constraint-aware sweep *does* conclude — assumption-implied
        // goals, contradictory constraints — the on side runs zero
        // engine rounds by design and the counts are incomparable.)
        assert_eq!(
            on.stats.iterations, off.stats.iterations,
            "preanalysis changed the reachability round count on {what}"
        );
    }
    if on.stats.preanalysis.stuck_latches == 0 && on.stats.preanalysis.vacuous == 0 {
        // Nothing folded, nothing concluded statically: identity pass.
        let mut scrubbed = on.stats.clone();
        scrubbed.preanalysis = PreanalysisStats::default();
        assert_eq!(on.verdict, off.verdict, "identity pass changed the verdict on {what}");
        assert_eq!(scrubbed, off.stats, "identity pass changed the stats on {what}");
        assert_eq!(
            scrubbed.engines_tried(),
            off.stats.engines_tried(),
            "identity pass changed the event log on {what}"
        );
    }
}

fn chipgen_property(module_idx: usize, with_bugs: bool, vunit_idx: usize) -> (Aig, String) {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs });
    let modules = chip.modules();
    let mi = &modules[module_idx % modules.len()];
    let module = chip.design().module(mi.name()).unwrap();
    let vm = make_verifiable(module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, compiled) = &vunits[vunit_idx % vunits.len()];
    let lowered = compiled.module.to_aig().unwrap();
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    (aig, format!("{}:{} with_bugs={}", mi.name(), vunit_idx, with_bugs))
}

/// A small counter whose bad state may be entangled with a stuck
/// latch, so some instances exercise the fold path and some the
/// identity path.
fn counter_design(bits: u32, bad_at: u64, with_stuck: bool) -> Aig {
    let mut g = Aig::new();
    let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
    let mut carry = veridic::aig::Lit::TRUE;
    for (id, q) in &qs {
        let next = g.xor(*q, carry);
        carry = g.and(*q, carry);
        g.set_next(*id, next);
    }
    let hit: Vec<_> = (0..bits)
        .map(|i| {
            let q = qs[i as usize].1;
            if bad_at >> i & 1 == 1 { q } else { !q }
        })
        .collect();
    let mut bad = g.and_many(hit);
    if with_stuck {
        // A hold latch stuck at its init value of 1: the fold rewrites
        // the bad cone but must not change when the counter hits.
        let (l, s) = g.latch("stuck_hi", true);
        g.set_next(l, s);
        bad = g.and(bad, s);
    }
    g.add_bad("count_hit", bad);
    g
}

proptest! {
    // Each case runs the property twice (on/off) under full default
    // budgets — fewer cases than the sibling equivalence suite keeps
    // the doubled work inside the same wall-clock envelope.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Neutrality on the real workload shape, across every engine
    /// selection the portfolio offers.
    #[test]
    fn preanalysis_is_neutral_on_chipgen_properties(
        module_idx in 0usize..32,
        bug_coin in 0u32..2,
        vunit_idx in 0usize..4,
        mode in 0u32..3,
    ) {
        let (aig, what) = chipgen_property(module_idx, bug_coin == 1, vunit_idx);
        let base = match mode {
            0 => CheckOptions::default(),
            1 => CheckOptions::builder().bdd_only(true).build(),
            _ => CheckOptions::builder().sat_only(true).build(),
        };
        assert_preanalysis_neutral(&aig, &base, &format!("{what} mode={mode}"));
    }

    /// Neutrality where the fold actually fires: counters entangled
    /// with a stuck-at-init hold latch. Both falsified and proved
    /// instances appear (bad_at within or beyond the counter range).
    #[test]
    fn preanalysis_is_neutral_when_folding(
        bits in 2u32..5,
        bad_at in 0u64..32,
        stuck_coin in 0u32..2,
        mode in 0u32..3,
    ) {
        let with_stuck = stuck_coin == 1;
        let aig = counter_design(bits, bad_at, with_stuck);
        let base = match mode {
            0 => CheckOptions::default(),
            1 => CheckOptions::builder().bdd_only(true).build(),
            _ => CheckOptions::builder().sat_only(true).build(),
        };
        let on = Portfolio::default().check(
            &aig,
            &CheckOptions { preanalysis: true, ..base.clone() },
        );
        if with_stuck {
            prop_assert_eq!(
                on.stats.preanalysis.stuck_latches, 1,
                "the stuck hold latch must be found"
            );
        }
        assert_preanalysis_neutral(
            &aig,
            &base,
            &format!("counter bits={bits} bad_at={bad_at} stuck={with_stuck} mode={mode}"),
        );
    }
}

/// A toggling counter whose bad is gated by a constrained input: the
/// constraint forces `en` high, so with `gate_blocked` the bad carries
/// a `!en` factor and is vacuous *only* under the constraint — the
/// plain ternary sweep cannot see it, the constraint-aware one must.
fn constrained_counter(bits: u32, bad_at: u64, gate_blocked: bool) -> Aig {
    let mut g = Aig::new();
    let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
    let mut carry = veridic::aig::Lit::TRUE;
    for (id, q) in &qs {
        let next = g.xor(*q, carry);
        carry = g.and(*q, carry);
        g.set_next(*id, next);
    }
    let hit: Vec<_> = (0..bits)
        .map(|i| {
            let q = qs[i as usize].1;
            if bad_at >> i & 1 == 1 { q } else { !q }
        })
        .collect();
    let hit = g.and_many(hit);
    let en = g.input("en");
    g.add_constraint("en_high", en);
    let bad = if gate_blocked { g.and(hit, !en) } else { g.and(hit, en) };
    g.add_bad("gated_hit", bad);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The constraint-aware sweep on gated counters. When the gate is
    /// blocked by the forced literal the stage concludes vacuously and
    /// the engines must agree the property never falsifies; when the
    /// gate is open the sweep concludes nothing and the full identity-
    /// pass neutrality contract applies.
    #[test]
    fn constrained_sweep_is_sound_and_otherwise_neutral(
        bits in 2u32..5,
        bad_at in 0u64..32,
        gate_coin in 0u32..2,
        mode in 0u32..3,
    ) {
        let blocked = gate_coin == 1;
        let aig = constrained_counter(bits, bad_at, blocked);
        let base = match mode {
            0 => CheckOptions::default(),
            1 => CheckOptions::builder().bdd_only(true).build(),
            _ => CheckOptions::builder().sat_only(true).build(),
        };
        if blocked {
            let on = Portfolio::default()
                .check(&aig, &CheckOptions { preanalysis: true, ..base.clone() });
            prop_assert!(on.verdict.is_proved(), "{:?}", on.verdict);
            prop_assert_eq!(on.stats.preanalysis.vacuous, 1, "constrained vacuity missed");
            prop_assert_eq!(on.stats.iterations, 0, "no engine may run");
            // The engines agree with the static conclusion: under the
            // constraint the gated bad can never fire.
            let off = Portfolio::default()
                .check(&aig, &CheckOptions { preanalysis: false, ..base });
            prop_assert!(
                !off.verdict.is_falsified(),
                "engines falsified a constraint-vacuous bad: {:?}", off.verdict
            );
        } else {
            assert_preanalysis_neutral(
                &aig,
                &base,
                &format!("constrained counter bits={bits} bad_at={bad_at} mode={mode}"),
            );
        }
    }
}

/// Contradictory constraints: no constrained path exists at all, so
/// every property over the design is vacuous — concluded statically,
/// with zero engine invocations.
#[test]
fn contradictory_constraints_conclude_vacuously() {
    let mut g = Aig::new();
    let a = g.input("a");
    g.add_constraint("a_high", a);
    g.add_constraint("a_low", !a);
    let (l, q) = g.latch("t", false);
    g.set_next(l, !q);
    g.add_bad("toggles", q);

    let result = check(&g, &CheckOptions::default());
    assert!(result.verdict.is_proved(), "{:?}", result.verdict);
    assert_eq!(result.stats.preanalysis.vacuous, 1);
    assert_eq!(result.stats.events.len(), 1, "no engine may log an event");
    assert_eq!(result.stats.events[0].engine, EngineId::Custom(PREANALYSIS));
    assert_eq!(result.stats.iterations, 0);
}

/// The vacuity short-circuit end-to-end: a bad that is statically
/// false concludes through the facade with **zero** engine
/// invocations — the event log holds exactly one `preanalysis` entry
/// with zero rounds, and the stats carry the vacuous verdict and the
/// folded-latch count.
#[test]
fn vacuous_bad_concludes_with_zero_engine_invocations() {
    let mut g = Aig::new();
    // stuck-at-0 latch AND a free input: statically false bad.
    let (l, s) = g.latch("stuck_lo", false);
    g.set_next(l, s);
    let a = g.input("a");
    let bad = g.and(s, a);
    g.add_bad("never", bad);

    let result = check(&g, &CheckOptions::default());
    // The multi-bad driver aggregates proofs as "portfolio"; the
    // per-bad event log attributes this one to the preanalysis stage.
    assert!(result.verdict.is_proved(), "{:?}", result.verdict);
    assert_eq!(result.stats.events.len(), 1, "no engine may log an event");
    let event = &result.stats.events[0];
    assert_eq!(event.engine, EngineId::Custom(PREANALYSIS));
    assert_eq!(event.resources.rounds, 0, "zero engine rounds");
    assert_eq!(event.resources.sat_conflicts, 0);
    assert_eq!(event.resources.bdd_allocated, 0);
    assert_eq!(result.stats.engines_tried(), vec!["never/preanalysis: proved"]);
    assert_eq!(result.stats.preanalysis.vacuous, 1);
    assert_eq!(result.stats.preanalysis.stuck_latches, 1);
    assert_eq!(result.stats.preanalysis.bads_analyzed, 1);
    // And no engine resources were spent at all.
    assert_eq!(result.stats.sat_conflicts, 0);
    assert_eq!(result.stats.bdd_allocated, 0);
    assert_eq!(result.stats.iterations, 0);
}

/// The trivially-falsified twin: a statically-true bad yields a
/// depth-0 counterexample that replays, again with zero engine work.
#[test]
fn trivially_true_bad_falsifies_at_depth_zero_without_engines() {
    let mut g = Aig::new();
    let (l, s) = g.latch("stuck_hi", true);
    g.set_next(l, s);
    let _ = g.input("a");
    g.add_bad("always", s);

    let result = check(&g, &CheckOptions::default());
    let trace = match &result.verdict {
        Verdict::Falsified(t) => t,
        other => panic!("expected a static falsification, got {other:?}"),
    };
    assert_eq!(trace.len(), 1, "depth-0 counterexample");
    assert!(trace.replays_on(&g), "the static counterexample must replay");
    assert_eq!(result.stats.events.len(), 1);
    assert_eq!(result.stats.engines_tried(), vec!["always/preanalysis: bad at depth 0"]);
    assert_eq!(result.stats.preanalysis.vacuous, 1);
}

/// Campaign-level equivalence on the buggy small chip: with the stage
/// on (default) or off, every record's verdict and statistics — and
/// the rendered Table 2 — are byte-identical, and the report-level
/// aggregates see no vacuous properties (chipgen never generates
/// them).
#[test]
fn campaign_is_byte_identical_with_preanalysis_on_or_off() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let on_opts = CheckOptions { preanalysis: true, ..CheckOptions::tiny_budget() };
    let off_opts = CheckOptions { preanalysis: false, ..CheckOptions::tiny_budget() };
    let on = run_campaign(&chip, &CampaignConfig { check: on_opts, workers: 0 });
    let off = run_campaign(&chip, &CampaignConfig { check: off_opts, workers: 0 });

    assert_eq!(on.errors, off.errors);
    assert_eq!(on.records.len(), off.records.len());
    let mut statically_settled = 0usize;
    for (a, b) in on.records.iter().zip(&off.records) {
        let what = format!("{}/{}", a.module, a.label);
        if a.stats.preanalysis.vacuous > 0 {
            // The constraint-aware sweep settled this property without
            // the engines (assumption-implied goal): the verdict kind
            // must still agree — the engines may never contradict a
            // static proof — but engine attribution and work stats are
            // incomparable by construction.
            statically_settled += 1;
            assert!(a.verdict.is_proved(), "static conclusion not a proof at {what}");
            assert!(
                !b.verdict.is_falsified(),
                "engines falsified a statically-vacuous property at {what}"
            );
            continue;
        }
        assert_eq!(a.verdict, b.verdict, "verdict diverged at {what}");
        let mut scrubbed = a.stats.clone();
        scrubbed.preanalysis = PreanalysisStats::default();
        assert_eq!(scrubbed, b.stats, "stats diverged at {what}");
    }
    // Chipgen's stereotype generators do emit assumption-implied goals
    // (the constraint cone forces the asserted literal), so the
    // constraint-aware sweep must settle at least one property — and
    // the report-level aggregate must agree with the per-record count.
    assert!(statically_settled > 0, "constraint-aware vacuity never fired on the chip");
    assert_eq!(on.vacuous_count(), statically_settled);
    let totals = on.preanalysis_totals();
    assert_eq!(totals.bads_analyzed, on.records.len(), "every cone swept");
}
