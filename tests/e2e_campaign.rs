//! End-to-end integration: the complete methodology on a whole chip.
//!
//! The buggy chip campaign must find exactly the seeded defects (no
//! false positives, no misses) with the failing property types matching
//! Table 3; the clean chip must prove everything.

use veridic::prelude::*;

#[test]
fn clean_chip_fully_verifies() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
    let report = run_campaign(&chip, &CampaignConfig::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.failures().len(), 0, "clean chip must verify completely");
    assert_eq!(report.resource_outs().len(), 0, "default budgets must suffice");
    assert!((report.proved_ratio() - 1.0).abs() < 1e-9);
}

#[test]
fn buggy_chip_finds_exactly_the_seeded_bugs() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let report = run_campaign(&chip, &CampaignConfig::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    let bug_modules: std::collections::BTreeSet<String> =
        chip.bugs().into_iter().map(|(m, _)| m).collect();
    // Soundness: no failures outside bug modules.
    for f in report.failures() {
        assert!(
            bug_modules.contains(&f.module),
            "false positive in {}: {}",
            f.module,
            f.label
        );
    }
    // Completeness: every seeded bug found with the right property type.
    for (module, bug) in chip.bugs() {
        let hits: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.module == module && r.verdict.is_falsified())
            .collect();
        assert!(!hits.is_empty(), "bug {bug} missed in {module}");
        assert!(
            hits.iter().any(|h| h.ptype == bug.property_type()),
            "bug {bug}: wrong property type(s): {:?}",
            hits.iter().map(|h| h.ptype).collect::<Vec<_>>()
        );
    }
}

#[test]
fn counterexamples_replay_on_the_simulator() {
    // Formal counterexamples from the campaign must reproduce the symptom
    // on the word-level simulator — engine-independent evidence.
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let report = run_campaign(&chip, &CampaignConfig::default());
    let mut replayed = 0;
    for rec in report.failures() {
        let Verdict::Falsified(trace) = &rec.verdict else {
            continue;
        };
        // Rebuild the instrumented module for this record's vunit.
        let module = chip.design().module(&rec.module).unwrap();
        let vm = make_verifiable(module).unwrap();
        let vunits = generate_all(&vm).unwrap();
        let (_, compiled) = vunits
            .iter()
            .find(|(g, _)| g.unit.name == rec.vunit)
            .expect("vunit regenerates identically");
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        assert!(
            trace.replays_on(&aig),
            "{}/{}: counterexample does not replay",
            rec.module,
            rec.label
        );
        replayed += 1;
    }
    assert!(replayed > 0, "at least one counterexample replayed");
}
